"""Registry-driven benchmark suite orchestration.

The suite layer turns the repository's benchmark collections and experiment
sweeps into *data*:

* :class:`BenchmarkRegistry` / :func:`register_family` — decorator-based
  registration of benchmark families; instances and feature vectors are
  lazily built and memoized per :class:`BenchmarkSpec`.
* :class:`Sweep` / :class:`Scenario` — declarative parameter grids and
  device × backend × optimization-level × mitigation cross-products that
  expand to run units and per-engine shards.
* :func:`run_scenario` / :class:`SuiteResult` — sharded execution through
  :meth:`~repro.execution.ExecutionEngine.run_suite` with streaming
  aggregation (scores, feature vectors, timing, cache stats) and resumable
  partial results.
* :mod:`repro.suite.scenarios` — the paper's standard sweeps (Fig. 1/2
  instances, the Table I scaling suite) defined once as data.

See ``docs/suite.md`` for the full walkthrough.
"""

from .registry import BenchmarkRegistry, DEFAULT_REGISTRY, get_registry, register_family
from .scenarios import (
    FIGURE1_SPECS,
    FIGURE2_FULL_SWEEPS,
    FIGURE2_SMALL_SWEEPS,
    SCALING_RULES,
    SCALING_SIZES,
    figure2_scenario,
    figure2_specs,
    figure2_sweeps,
    mitigated_scenario,
    scaling_specs,
)
from .spec import BenchmarkSpec
from .sweep import EngineConfig, RunUnit, Scenario, Shard, Sweep

__all__ = [
    "BenchmarkRegistry",
    "DEFAULT_REGISTRY",
    "get_registry",
    "register_family",
    "BenchmarkSpec",
    "Sweep",
    "Scenario",
    "EngineConfig",
    "RunUnit",
    "Shard",
    "figure2_sweeps",
    "figure2_specs",
    "figure2_scenario",
    "mitigated_scenario",
    "scaling_specs",
    "FIGURE1_SPECS",
    "FIGURE2_FULL_SWEEPS",
    "FIGURE2_SMALL_SWEEPS",
    "SCALING_SIZES",
    "SCALING_RULES",
    "SpecOutcome",
    "SuiteResult",
    "SCHEMA_VERSION",
    "run_scenario",
]

_LAZY = {
    # The runner and result containers pull in the execution engine (which
    # itself imports repro.benchmarks); loading them lazily keeps
    # ``repro.suite`` importable from inside the benchmark family modules
    # during their decorator-based registration without an import cycle.
    "SpecOutcome": "results",
    "SuiteResult": "results",
    "SCHEMA_VERSION": "results",
    "run_scenario": "runner",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
