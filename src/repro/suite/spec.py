"""Hashable, JSON-serializable benchmark specifications.

A :class:`BenchmarkSpec` names a benchmark *family* plus the constructor
parameters of one instance — ``("ghz", num_qubits=5)`` — without building
the (potentially expensive) benchmark object.  Specs are the currency of the
suite layer: sweeps expand to specs, scenario results are keyed on specs,
and circuit construction is deferred until a spec is actually executed and
memoized per spec in the :class:`~repro.suite.registry.BenchmarkRegistry`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Mapping, Tuple

from ..exceptions import BenchmarkError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..benchmarks.base import Benchmark

__all__ = ["BenchmarkSpec"]


def _freeze(value: Any) -> Any:
    """Normalise a parameter value into a hashable, JSON-stable form."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise BenchmarkError(
        f"benchmark spec parameters must be JSON-representable scalars or "
        f"sequences, got {type(value).__name__}: {value!r}"
    )


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze` for constructor consumption (tuples -> lists)."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class BenchmarkSpec:
    """An immutable (family, parameters) pair identifying one benchmark instance.

    Attributes:
        family: Registered family name, e.g. ``"ghz"``.
        params: Sorted ``(name, value)`` pairs of constructor keyword
            arguments.  Use :meth:`make` rather than building the tuple by
            hand so values are normalised and ordering is canonical.
    """

    family: str
    params: Tuple[Tuple[str, Any], ...] = field(default=())

    @classmethod
    def make(cls, family: str, **params: Any) -> "BenchmarkSpec":
        """Build a spec from keyword parameters (the canonical constructor)."""
        frozen = tuple(sorted((name, _freeze(value)) for name, value in params.items()))
        return cls(family=family, params=frozen)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def as_kwargs(self) -> Dict[str, Any]:
        """The parameters as constructor keyword arguments."""
        return {name: _thaw(value) for name, value in self.params}

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly mapping form ``{"family": ..., "params": {...}}``."""
        return {"family": self.family, "params": {name: value for name, value in self.params}}

    def key(self) -> str:
        """Canonical string identity, e.g. ``"ghz(num_qubits=5)"``.

        Stable across processes (parameters are sorted by name), so it can
        key persisted partial results for resumable suite runs.
        """
        inner = ",".join(f"{name}={value!r}" for name, value in self.params)
        return f"{self.family}({inner})"

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchmarkSpec":
        return cls.make(data["family"], **dict(data.get("params", {})))

    @classmethod
    def from_json(cls, text: str) -> "BenchmarkSpec":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self, registry=None) -> "Benchmark":
        """The benchmark instance for this spec, memoized in the registry.

        Args:
            registry: A :class:`~repro.suite.registry.BenchmarkRegistry`;
                defaults to the global default registry.
        """
        if registry is None:
            from .registry import get_registry

            registry = get_registry()
        return registry.build(self)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.key()
