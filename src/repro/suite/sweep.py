"""Declarative sweeps and scenarios.

A :class:`Sweep` describes a family of benchmark instances as data — a
parameter grid (cross-product, last axis fastest) or an explicit point list —
and expands to :class:`~repro.suite.spec.BenchmarkSpec` objects.  A
:class:`Scenario` combines sweeps with the execution axes of an experiment
(devices × backends × optimization levels × placements × mitigation
techniques) and expands to the full cross-product of run units, grouped into
per-engine shards so each device's
:class:`~repro.execution.ExecutionEngine` (and its transpile / calibration
caches) is shared across every unit landing on it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..exceptions import BenchmarkError
from .spec import BenchmarkSpec, _freeze

__all__ = ["Sweep", "Scenario", "EngineConfig", "RunUnit", "Shard"]


@dataclass(frozen=True)
class Sweep:
    """A declarative set of benchmark instances of one family.

    Attributes:
        family: Registered benchmark family name.
        grid: Ordered ``(param, values)`` axes; expansion is the
            cross-product with the **last axis varying fastest** (matching
            how the paper lists its instance tables).
        points: Explicit parameter points (each a ``(param, value)`` tuple
            set).  Used instead of ``grid`` when the instances do not form a
            rectangular grid.  ``grid`` and ``points`` are mutually exclusive.
    """

    family: str
    grid: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    points: Tuple[Tuple[Tuple[str, Any], ...], ...] = ()

    def __post_init__(self) -> None:
        if self.grid and self.points:
            raise BenchmarkError("a Sweep takes either a grid or explicit points, not both")

    @classmethod
    def of(cls, family: str, **axes: Sequence[Any]) -> "Sweep":
        """Grid sweep: ``Sweep.of("ghz", num_qubits=(3, 5, 7, 11))``."""
        grid = tuple((name, tuple(_freeze(v) for v in values)) for name, values in axes.items())
        return cls(family=family, grid=grid)

    @classmethod
    def explicit(cls, family: str, points: Iterable[Mapping[str, Any]]) -> "Sweep":
        """Point-list sweep: ``Sweep.explicit("vqe", [{"num_qubits": 4}, ...])``."""
        frozen = tuple(
            tuple(sorted((name, _freeze(value)) for name, value in point.items()))
            for point in points
        )
        return cls(family=family, points=frozen)

    def specs(self) -> List[BenchmarkSpec]:
        """Expand the sweep into concrete benchmark specs, in grid order."""
        if self.points:
            return [BenchmarkSpec(family=self.family, params=point) for point in self.points]
        if not self.grid:
            return [BenchmarkSpec(family=self.family)]
        names = [name for name, _ in self.grid]
        value_axes = [values for _, values in self.grid]
        specs = []
        for combination in itertools.product(*value_axes):
            specs.append(BenchmarkSpec.make(self.family, **dict(zip(names, combination))))
        return specs

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (sweeps are data and can live in config files)."""
        if self.points:
            return {
                "family": self.family,
                "points": [dict(point) for point in self.points],
            }
        return {"family": self.family, "grid": {name: list(values) for name, values in self.grid}}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Sweep":
        if "points" in data:
            return cls.explicit(data["family"], data["points"])
        return cls.of(data["family"], **{k: tuple(v) for k, v in data.get("grid", {}).items()})


@dataclass(frozen=True)
class EngineConfig:
    """The execution axes that pin one :class:`ExecutionEngine` instance."""

    device: str
    backend: Optional[str] = None
    optimization_level: int = 1
    placement: str = "noise_aware"

    def key(self) -> str:
        backend = self.backend or "default"
        return f"{self.device}/{backend}/O{self.optimization_level}/{self.placement}"


@dataclass(frozen=True)
class RunUnit:
    """One (spec, engine configuration, mitigation) execution of a scenario.

    ``index`` is the unit's position in the scenario's expansion order, used
    to report results in a deterministic, scenario-defined order regardless
    of the sharded execution schedule.
    """

    spec: BenchmarkSpec
    engine: EngineConfig
    mitigation: Any = "raw"
    index: int = 0

    @property
    def mitigation_label(self) -> str:
        if isinstance(self.mitigation, str):
            return self.mitigation
        return getattr(self.mitigation, "name", str(self.mitigation))

    def key(self) -> str:
        """Stable identity within a scenario (keys resumable partial results)."""
        return f"{self.spec.key()}|{self.engine.key()}|{self.mitigation_label}"


@dataclass(frozen=True)
class Shard:
    """All run units of a scenario sharing one engine configuration.

    ``groups`` preserves the scenario's mitigation ordering: the runner makes
    one :meth:`~repro.execution.ExecutionEngine.run_suite` call per group on
    a single shared engine, so transpile and calibration caches are shared
    across every technique and benchmark landing on the device.
    """

    engine: EngineConfig
    groups: Tuple[Tuple[Any, Tuple[RunUnit, ...]], ...]

    @property
    def units(self) -> Tuple[RunUnit, ...]:
        return tuple(unit for _, group in self.groups for unit in group)


@dataclass(frozen=True)
class Scenario:
    """A named, declarative experiment: sweeps × execution axes.

    Attributes:
        name: Scenario identifier (used in results and persisted files).
        sweeps: The benchmark instance definitions.
        devices: Device names; empty means "every registered device",
            resolved by the runner at execution time.
        mitigations: Mitigation techniques (names or
            :class:`~repro.mitigation.Mitigator` instances); ``"raw"`` is
            unmitigated execution.
        backends: Backend names (``None`` = the engine default).
        optimization_levels / placements: Transpiler axes.
    """

    name: str
    sweeps: Tuple[Sweep, ...]
    devices: Tuple[str, ...] = ()
    mitigations: Tuple[Any, ...] = ("raw",)
    backends: Tuple[Optional[str], ...] = (None,)
    optimization_levels: Tuple[int, ...] = (1,)
    placements: Tuple[str, ...] = ("noise_aware",)

    def specs(self) -> List[BenchmarkSpec]:
        """All benchmark specs, sweep-by-sweep in declaration order."""
        return [spec for sweep in self.sweeps for spec in sweep.specs()]

    def engine_configs(self, devices: Optional[Sequence[str]] = None) -> List[EngineConfig]:
        """The engine-axis cross-product (device fastest-last in expansion)."""
        resolved = self._resolve_devices(devices)
        return [
            EngineConfig(device, backend, level, placement)
            for device in resolved
            for backend in self.backends
            for level in self.optimization_levels
            for placement in self.placements
        ]

    def _resolve_devices(self, devices: Optional[Sequence[str]] = None) -> Tuple[str, ...]:
        if devices is not None:
            return tuple(devices)
        if self.devices:
            return self.devices
        from ..devices import all_devices

        return tuple(device.name for device in all_devices())

    def expand(self, devices: Optional[Sequence[str]] = None) -> List[RunUnit]:
        """The full cross-product, spec-major: spec → engine axes → mitigation.

        The order defines the scenario's canonical result ordering; the
        runner may execute units in a different (sharded) schedule but
        reports results in this order.
        """
        units: List[RunUnit] = []
        index = 0
        configs = self.engine_configs(devices)
        for spec in self.specs():
            for config in configs:
                for mitigation in self.mitigations:
                    units.append(RunUnit(spec, config, mitigation, index))
                    index += 1
        return units

    def shards(self, devices: Optional[Sequence[str]] = None) -> List[Shard]:
        """Group the expansion by engine configuration (execution schedule)."""
        by_engine: Dict[EngineConfig, Dict[str, Tuple[Any, List[RunUnit]]]] = {}
        engine_order: List[EngineConfig] = []
        for unit in self.expand(devices):
            if unit.engine not in by_engine:
                by_engine[unit.engine] = {}
                engine_order.append(unit.engine)
            groups = by_engine[unit.engine]
            label = unit.mitigation_label
            if label not in groups:
                groups[label] = (unit.mitigation, [])
            groups[label][1].append(unit)
        return [
            Shard(
                engine=config,
                groups=tuple(
                    (mitigation, tuple(units))
                    for mitigation, units in by_engine[config].values()
                ),
            )
            for config in engine_order
        ]

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly form; raises for non-string mitigation instances."""
        for mitigation in self.mitigations:
            if not isinstance(mitigation, str):
                raise BenchmarkError(
                    "scenarios holding Mitigator instances cannot be serialized; "
                    "use technique names"
                )
        return {
            "name": self.name,
            "sweeps": [sweep.as_dict() for sweep in self.sweeps],
            "devices": list(self.devices),
            "mitigations": list(self.mitigations),
            "backends": list(self.backends),
            "optimization_levels": list(self.optimization_levels),
            "placements": list(self.placements),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        return cls(
            name=data["name"],
            sweeps=tuple(Sweep.from_dict(sweep) for sweep in data.get("sweeps", [])),
            devices=tuple(data.get("devices", ())),
            mitigations=tuple(data.get("mitigations", ("raw",))),
            backends=tuple(data.get("backends", (None,))),
            optimization_levels=tuple(data.get("optimization_levels", (1,))),
            placements=tuple(data.get("placements", ("noise_aware",))),
        )
