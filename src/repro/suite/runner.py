"""Sharded scenario execution through the unified execution engine.

:func:`run_scenario` is the single sweep-and-score loop the experiment
drivers used to reimplement individually: it expands a declarative
:class:`~repro.suite.sweep.Scenario`, groups the run units into per-engine
shards, executes each shard through
:meth:`~repro.execution.ExecutionEngine.run_suite` (one engine per shard, so
transpile and calibration caches are shared across every benchmark and
technique landing on a device) and streams
:class:`~repro.suite.results.SpecOutcome` records into a
:class:`~repro.suite.results.SuiteResult`.

Resumability: pass a previously persisted :class:`SuiteResult` as
``partial`` and every already-recorded unit is skipped — a crashed or
interrupted sweep continues where it stopped.  Determinism: per-unit seeds
are fixed functions of the batch seed exactly as in
:meth:`ExecutionEngine.run`, so scores are independent of the sharded
execution order and identical to a hand-written per-benchmark loop.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Sequence, Union

from ..devices import get_device
from ..exceptions import BackendCapacityError, DeviceError, DistributedError, MitigationError
from ..execution import Backend, ExecutionEngine
from ..mitigation import is_raw_spec, resolve_mitigator
from ..telemetry import get_tracer
from .registry import BenchmarkRegistry, get_registry
from .results import SpecOutcome, SuiteResult
from .sweep import EngineConfig, RunUnit, Scenario, Shard

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..store import ResultStore

__all__ = ["run_scenario"]


def _validate_mitigations(scenario: Scenario) -> None:
    """Resolve every technique spec up front: an unknown name is a
    configuration error and must raise before any shard executes."""
    for technique in scenario.mitigations:
        if not is_raw_spec(technique):
            resolve_mitigator(technique)


def run_scenario(
    scenario: Scenario,
    shots: int = 1000,
    repetitions: int = 3,
    seed: Optional[int] = 1234,
    devices: Optional[Sequence[str]] = None,
    trajectories: Optional[int] = None,
    max_workers: int = 1,
    backend: Union[Backend, str, None] = None,
    registry: Optional[BenchmarkRegistry] = None,
    partial: Optional[SuiteResult] = None,
    on_outcome: Optional[Callable[[SpecOutcome], None]] = None,
    save_path=None,
    store: Optional["ResultStore"] = None,
    executor: Any = "thread",
    processes: int = 2,
    lease_timeout: Optional[float] = None,
    max_attempts: int = 3,
    chunk_size: Optional[int] = None,
    heartbeat: Optional[Callable[[Dict[str, int]], None]] = None,
) -> SuiteResult:
    """Execute a scenario shard-by-shard and stream the aggregated results.

    Args:
        scenario: The declarative sweep × execution-axis definition.
        shots / repetitions / seed: Execution knobs passed to
            :meth:`ExecutionEngine.run` for every unit (the same seed per
            unit keeps scores independent of execution order).
        devices: Override the scenario's device axis without rebuilding it.
        trajectories: Trajectory count for name-constructed backends.
        max_workers: Worker-pool size of each shard's engine.
        backend: Backend *override* applied to every shard — needed when the
            caller holds a backend instance, which cannot live inside a
            (serializable) scenario.  When ``None`` each shard uses its
            engine configuration's backend name.
        registry: Benchmark registry used to build specs (default: global).
        partial: A previously returned / persisted :class:`SuiteResult`;
            units already recorded there are not re-executed (resume).
        on_outcome: Streaming observer called with every
            :class:`SpecOutcome` the moment it is recorded.
        save_path: When given, the (cumulative) result is re-persisted to
            this JSON file after every completed shard, so a crash loses at
            most one shard of work.
        store: A content-addressed :class:`~repro.store.ResultStore`.  Each
            shard's engine consults it before simulating — a unit whose
            content key (spec × pipeline × noise × mitigation × knobs) is
            already stored is answered from disk with zero compilations and
            zero backend executions — and every executed unit's
            :class:`~repro.execution.results.BenchmarkRun` and
            :class:`SpecOutcome` are written back (skips write an outcome
            row only; they are re-derived rather than cached).
        executor: Execution strategy: ``"thread"`` (default — one engine per
            shard, ``max_workers`` threads inside it), ``"process"`` (a
            :class:`~repro.distributed.ProcessShardExecutor` worker-process
            pool driven by the leased-shard scheduler — breaks the GIL
            ceiling for the numpy-heavy simulate/transpile hot path), or any
            executor instance with ``submit(lease)``/``capacity`` (advanced:
            custom pools; the caller owns its lifecycle).  Scores are
            bit-identical across all strategies at a fixed seed.
        processes: Worker-process count for ``executor="process"``.
        lease_timeout: Straggler re-lease deadline in seconds (process path;
            ``None`` disables re-leasing).
        max_attempts: Leases per task before the sweep fails (process path).
        chunk_size: Units per leased task (process path; default splits the
            plan into ~4 tasks per worker for load balancing).
        heartbeat: Progress observer for the process path, called
            periodically with the scheduler's counters.

    Returns:
        The :class:`SuiteResult` (the ``partial`` instance when resuming).
    """
    registry = registry if registry is not None else get_registry()
    _validate_mitigations(scenario)
    result = partial if partial is not None else SuiteResult(scenario=scenario.name)
    # Pin the scenario and every score-affecting knob on the result: a
    # persisted partial resumed under different settings must fail loudly
    # instead of presenting stale scores as the new configuration's output
    # (max_workers is excluded — scores are worker-count deterministic).
    result.bind_config(
        scenario.name,
        {
            "shots": shots,
            "repetitions": repetitions,
            "seed": seed,
            "trajectories": trajectories,
            "backend_override": getattr(backend, "name", backend),
        },
    )

    tracer = get_tracer()
    executor_label = executor if isinstance(executor, str) else type(executor).__name__
    with tracer.span("suite.run_scenario", scenario=scenario.name, executor=executor_label):
        if not (isinstance(executor, str) and executor == "thread"):
            return _run_scenario_distributed(
                scenario,
                result,
                executor,
                shots=shots,
                repetitions=repetitions,
                seed=seed,
                devices=devices,
                trajectories=trajectories,
                backend=backend,
                on_outcome=on_outcome,
                save_path=save_path,
                store=store,
                processes=processes,
                lease_timeout=lease_timeout,
                max_attempts=max_attempts,
                chunk_size=chunk_size,
                heartbeat=heartbeat,
            )

        for shard in scenario.shards(devices):
            pending_groups = [
                (mitigation, [unit for unit in units if unit.key() not in result])
                for mitigation, units in shard.groups
            ]
            if not any(units for _, units in pending_groups):
                continue
            device = get_device(shard.engine.device)
            with tracer.span("suite.shard", engine=shard.engine.key()):
                with ExecutionEngine(
                    device,
                    backend=backend if backend is not None else shard.engine.backend,
                    max_workers=max_workers,
                    optimization_level=shard.engine.optimization_level,
                    placement=shard.engine.placement,
                    store=store,
                    trajectories=trajectories,
                ) as engine:
                    for mitigation, units in pending_groups:
                        if not units:
                            continue
                        _run_group(
                            engine, units, mitigation, registry, result, on_outcome,
                            shots=shots, repetitions=repetitions, seed=seed,
                            store=store, scenario_name=scenario.name,
                        )
            # The caches remain readable after the pool shuts down.
            result.note_engine_stats(shard.engine.key(), engine.stats())
            if save_path is not None:
                result.to_json(save_path)
        return result


def _run_group(
    engine: ExecutionEngine,
    units: Sequence[RunUnit],
    mitigation: Any,
    registry: BenchmarkRegistry,
    result: SuiteResult,
    on_outcome: Optional[Callable[[SpecOutcome], None]],
    shots: int,
    repetitions: int,
    seed: Optional[int],
    store: Optional["ResultStore"] = None,
    scenario_name: str = "",
) -> None:
    """Execute one shard group (single technique) through ``run_suite``."""
    benchmarks = [unit.spec.build(registry) for unit in units]
    # run_suite fires exactly one callback (result or skip) per benchmark, in
    # submission order; matching by position rather than object identity
    # stays correct when the registry hands back one memoized instance for
    # duplicate specs.
    cursor = iter(units)

    def record(outcome: SpecOutcome) -> None:
        result.add(outcome)
        if store is not None:
            # Outcome rows (runs *and* skips) are write-through: they make
            # whole scenarios queryable (`repro query`, GET /results); the
            # read path goes through the engine's run-level lookup, which
            # shares the same content key.
            key = engine.content_key(
                outcome.key.split("|", 1)[0], shots, repetitions, seed,
                mitigation=mitigation,
            )
            store.put_outcome(key, outcome, scenario=scenario_name)
        if on_outcome is not None:
            on_outcome(outcome)

    def on_result(benchmark, run) -> None:
        unit = next(cursor)
        record(
            SpecOutcome(
                key=unit.key(),
                spec=unit.spec.as_dict(),
                device=engine.device.name,
                mitigation=unit.mitigation_label,
                index=unit.index,
                status="ok",
                run=run,
                seconds=run.seconds,
            )
        )

    def on_skip(benchmark, error) -> None:
        unit = next(cursor)
        if isinstance(error, (MitigationError, BackendCapacityError)):
            # Technique/benchmark mismatches and backend capacity limits are
            # surfaced loudly so a sparse sweep is explainable; plain
            # oversized-circuit skips are the expected "X" entries of Fig. 2.
            warnings.warn(f"skipping {benchmark}: {error}", stacklevel=2)
        record(
            SpecOutcome(
                key=unit.key(),
                spec=unit.spec.as_dict(),
                device=engine.device.name,
                mitigation=unit.mitigation_label,
                index=unit.index,
                status="skipped",
                reason=str(error),
            )
        )

    engine.run_suite(
        benchmarks,
        shots=shots,
        repetitions=repetitions,
        seed=seed,
        mitigation=mitigation,
        on_result=on_result,
        on_skip=on_skip,
    )


def _run_scenario_distributed(
    scenario: Scenario,
    result: SuiteResult,
    executor: Any,
    shots: int,
    repetitions: int,
    seed: Optional[int],
    devices: Optional[Sequence[str]],
    trajectories: Optional[int],
    backend: Union[Backend, str, None],
    on_outcome: Optional[Callable[[SpecOutcome], None]],
    save_path,
    store: Optional["ResultStore"],
    processes: int,
    lease_timeout: Optional[float],
    max_attempts: int,
    chunk_size: Optional[int],
    heartbeat: Optional[Callable[[Dict[str, int]], None]],
) -> SuiteResult:
    """Process-executor path of :func:`run_scenario`.

    The parent plans the scenario's pending remainder into picklable leased
    tasks, pre-resolves store-warm units locally (they never ship to a
    worker), drives the plan through the scheduler, and merges the streamed
    outcome payloads back into ``result`` — scores bit-identical to the
    thread path because every unit runs with the same per-unit seed through
    the same ``run_suite`` code inside the workers.
    """
    from ..distributed import ProcessShardExecutor, plan_scenario, run_leases

    if backend is not None and not isinstance(backend, str):
        raise DistributedError(
            "backend instances cannot cross the process boundary; pass the "
            "backend by name (workers construct their own)"
        )
    # Workers open their own WAL connection to a file-backed store; an
    # in-memory store cannot be shared, so workers run storeless and the
    # parent writes runs back on their behalf below.
    store_path = store.path if store is not None and store.path != ":memory:" else None

    # Parent-side engines used only for content keys (store pre-resolution
    # and write-through); they never execute anything.
    key_engines: Dict[str, ExecutionEngine] = {}

    def key_engine(config: EngineConfig) -> ExecutionEngine:
        engine = key_engines.get(config.key())
        if engine is None:
            engine = ExecutionEngine(
                get_device(config.device),
                backend=backend if backend is not None else config.backend,
                max_workers=1,
                optimization_level=config.optimization_level,
                placement=config.placement,
                trajectories=trajectories,
            )
            key_engines[config.key()] = engine
        return engine

    def record(outcome: SpecOutcome, config: EngineConfig, mitigation: str) -> None:
        result.add(outcome)
        if store is not None:
            key = key_engine(config).content_key(
                outcome.key.split("|", 1)[0], shots, repetitions, seed,
                mitigation=mitigation,
            )
            store.put_outcome(key, outcome, scenario=scenario.name)
            if store_path is None and outcome.run is not None:
                # Workers had no store handle; persist their runs here so an
                # in-memory store ends up as warm as on the thread path.
                store.put_run(key, outcome.run)
        if on_outcome is not None:
            on_outcome(outcome)

    try:
        completed = set(result.completed_keys())
        if store is not None:
            prewarmed = 0
            for shard in scenario.shards(devices):
                engine = key_engine(shard.engine)
                for mitigation, units in shard.groups:
                    for unit in units:
                        if unit.key() in completed:
                            continue
                        key = engine.content_key(
                            unit.key().split("|", 1)[0], shots, repetitions, seed,
                            mitigation=mitigation,
                        )
                        run = store.get_run(key)
                        if run is None:
                            continue
                        record(
                            SpecOutcome(
                                key=unit.key(),
                                spec=unit.spec.as_dict(),
                                device=engine.device.name,
                                mitigation=unit.mitigation_label,
                                index=unit.index,
                                status="ok",
                                run=run,
                                seconds=run.seconds,
                            ),
                            shard.engine,
                            str(mitigation),
                        )
                        completed.add(unit.key())
                        prewarmed += 1
            if prewarmed:
                result.note_engine_stats("scheduler", {"prewarmed_units": prewarmed})

        owns_executor = False
        if isinstance(executor, str):
            if executor != "process":
                raise DistributedError(
                    f"unknown executor {executor!r}; use 'thread', 'process' or "
                    "an executor instance"
                )
            executor = ProcessShardExecutor(processes=processes, store_path=store_path)
            owns_executor = True

        plan = plan_scenario(
            scenario,
            devices,
            completed=frozenset(completed),
            shots=shots,
            repetitions=repetitions,
            seed=seed,
            trajectories=trajectories,
            backend_override=backend,
            store_path=store_path,
            processes=max(1, int(getattr(executor, "capacity", processes))),
            chunk_size=chunk_size,
        )

        def on_outcomes(lease, payloads) -> None:
            for payload in payloads:
                record(SpecOutcome.from_dict(payload), lease.task.engine, lease.task.mitigation)
            if payloads and save_path is not None:
                result.to_json(save_path)

        try:
            if plan.tasks:
                stats = run_leases(
                    plan,
                    executor,
                    on_outcomes,
                    lease_timeout=lease_timeout,
                    max_attempts=max_attempts,
                    heartbeat=heartbeat,
                )
                for worker, worker_stats in sorted(stats["workers"].items()):
                    result.note_engine_stats(f"worker-{worker}", worker_stats)
                result.note_engine_stats("scheduler", stats["scheduler"])
        finally:
            if owns_executor:
                executor.close()
    finally:
        for engine in key_engines.values():
            engine.close()

    if save_path is not None:
        result.to_json(save_path)
    return result
