#!/usr/bin/env python3
"""Full variational VQE loop on a noisy device model (extension of Sec. IV-E).

The paper scores a *single iteration* of VQE at classically pre-optimised
parameters because cloud queue latency makes full variational loops
impractical on real hardware.  With a local simulator that restriction
disappears, so this example runs the complete loop the paper describes as
future work: SPSA optimises the TFIM energy where every objective evaluation
is a shot-based, noisy execution on a Table II device model.

Run with:  python examples/variational_loop.py
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks import VQEBenchmark
from repro.devices import get_device
from repro.optimize import minimize_spsa
from repro.simulation import StatevectorSimulator
from repro.transpiler import transpile


def main() -> None:
    num_qubits, num_layers = 3, 1
    benchmark = VQEBenchmark(num_qubits, num_layers, seed=1)
    device = get_device("IBM-Lagos-7Q")
    exact_energy = benchmark.exact_ground_energy()
    print(f"TFIM on {num_qubits} spins; exact ground energy = {exact_energy:.4f}")

    evaluations = 0

    def noisy_energy(parameters: np.ndarray) -> float:
        """Measure <H> on the noisy device model at the given ansatz parameters."""
        nonlocal evaluations
        evaluations += 1
        counts = []
        for basis in ("z", "x"):
            circuit = benchmark.ansatz(parameters, measure_basis=basis)
            compiled = transpile(circuit, device)
            compact, physical = compiled.compact()
            simulator = StatevectorSimulator(
                device.noise_model(physical), seed=evaluations, trajectories=25
            )
            counts.append(simulator.run(compact, shots=150))
        return benchmark.measured_energy(counts[0], counts[1])

    initial = np.random.default_rng(0).uniform(-0.3, 0.3, size=benchmark.num_parameters)
    print(f"initial noisy energy  = {noisy_energy(initial):.4f}")

    result = minimize_spsa(noisy_energy, initial, max_iterations=40, a=0.3, c=0.2, seed=2)
    print(f"optimised noisy energy = {result.value:.4f} after {result.evaluations} evaluations")

    ideal_at_result = benchmark._energy_from_statevector(result.parameters)
    print(f"noiseless energy at the optimised parameters = {ideal_at_result:.4f}")
    print(f"fraction of ground-state energy recovered    = {ideal_at_result / exact_energy:.2%}")


if __name__ == "__main__":
    main()
