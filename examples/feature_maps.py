#!/usr/bin/env python3
"""Feature maps and suite coverage: the paper's Fig. 1 and Table I.

Prints the six-dimensional feature vector of each benchmark family (including
how the features evolve as the instances scale up) and the convex-hull
coverage volume of the different benchmark suites.

Run with:  python examples/feature_maps.py
"""

from __future__ import annotations

from repro.benchmarks import (
    BitCodeBenchmark,
    GHZBenchmark,
    HamiltonianSimulationBenchmark,
    MerminBellBenchmark,
    PhaseCodeBenchmark,
    VQEBenchmark,
    VanillaQAOABenchmark,
    ZZSwapQAOABenchmark,
)
from repro.experiments import render_figure1, render_table1
from repro.features import FEATURE_NAMES


def main() -> None:
    print("=== Figure 1: representative feature maps ===")
    print(render_figure1())

    print("\n=== Feature scaling with benchmark size ===")
    header = "benchmark".ljust(28) + "  " + "  ".join(name[:6].rjust(6) for name in FEATURE_NAMES)
    print(header)
    for family, sizes in (
        (GHZBenchmark, (3, 10, 50)),
        (VanillaQAOABenchmark, (3, 6, 10)),
        (ZZSwapQAOABenchmark, (3, 6, 10)),
        (HamiltonianSimulationBenchmark, (3, 10, 50)),
    ):
        for size in sizes:
            benchmark = family(size)
            vector = benchmark.features().as_array()
            row = "  ".join(f"{value:6.3f}" for value in vector)
            print(f"{str(benchmark):<28s}  {row}")
    for benchmark in (
        MerminBellBenchmark(4),
        BitCodeBenchmark(5, 3),
        PhaseCodeBenchmark(5, 3),
        VQEBenchmark(6, 2),
    ):
        vector = benchmark.features().as_array()
        row = "  ".join(f"{value:6.3f}" for value in vector)
        print(f"{str(benchmark):<28s}  {row}")

    print("\n=== Table I: suite coverage (reduced scale, measured vs paper) ===")
    print(render_table1(max_size=100, cbg_instances=200))


if __name__ == "__main__":
    main()
