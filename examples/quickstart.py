#!/usr/bin/env python3
"""Quickstart: define a benchmark, compile it to a device model and score it.

This mirrors the paper's workflow end to end:

1. pick a SupermarQ benchmark application (here: a 5-qubit GHZ test),
2. inspect its hardware-agnostic feature vector (Fig. 1),
3. compile it to a device from the Table II library (the Closed Division
   allows basis translation, noise-aware placement, routing, cancellation),
4. execute it on the device's calibration-derived noise model,
5. compute the application-level score (Hellinger fidelity for GHZ),
6. mitigate the readout error through the execution engine and compare the
   raw and mitigated scores (see docs/mitigation.md),
7. serve a cached figure: run a small Fig. 2 scenario through the
   content-addressed result store twice — the repeat is answered from the
   store with zero backend executions (see docs/store.md and
   docs/service.md for the HTTP service on top), and
8. rerun the sweep on worker processes — `executor="process"` breaks the
   GIL ceiling on multi-core machines with bit-identical scores (see
   docs/distributed.md; from the CLI: `repro run figure2 --processes 4`),
   and
9. trace that same sweep: enable the telemetry subsystem, rerun, and show
   the span tree the run produced — the CLI equivalent writes a
   Perfetto-ready Chrome trace with `repro run figure2 --processes 2
   --trace trace.json` (see docs/telemetry.md).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ExecutionEngine, GHZBenchmark, get_device, transpile
from repro.simulation import StatevectorSimulator


def main() -> None:
    benchmark = GHZBenchmark(5)
    circuit = benchmark.circuits()[0]

    print("=== Benchmark ===")
    print(f"name:          {benchmark}")
    print(f"qubits:        {circuit.num_qubits}")
    print(f"depth:         {circuit.depth()}")
    print(f"2-qubit gates: {circuit.num_two_qubit_gates()}")
    print("feature vector (Fig. 1):")
    for name, value in benchmark.features().as_dict().items():
        print(f"  {name:<24s} {value:.3f}")

    print("\n=== OpenQASM (shared abstraction level, design principle 3) ===")
    print(circuit.to_qasm())

    device = get_device("IBM-Guadalupe-16Q")
    compiled = transpile(circuit, device)
    compact, physical_qubits = compiled.compact()
    print("=== Compilation to", device.name, "===")
    print(f"native ops:    {compiled.circuit.count_ops()}")
    print(f"SWAPs inserted: {compiled.swap_count}")
    print(f"physical qubits used: {physical_qubits}")

    print("\n=== Execution ===")
    ideal = StatevectorSimulator(seed=1).run(compact, shots=2000)
    noisy = StatevectorSimulator(device.noise_model(physical_qubits), seed=1, trajectories=100).run(
        compact, shots=2000
    )
    print(f"ideal score: {benchmark.score([ideal]):.3f}")
    print(f"noisy score: {benchmark.score([noisy]):.3f}   (device: {device.name})")

    print("\n=== Error mitigation through the engine ===")
    with ExecutionEngine(device, backend="trajectory", max_workers=2) as engine:
        raw = engine.run(benchmark, shots=2000, repetitions=2, seed=1234)
        mitigated = engine.run(
            benchmark, shots=2000, repetitions=2, seed=1234, mitigation="readout"
        )
        print(f"raw score:       {raw.mean_score:.3f}")
        print(f"mitigated score: {mitigated.mean_score:.3f}   (readout calibration)")
        stats = engine.stats()
        print(
            f"cache stats: transpile {stats['hits']}h/{stats['misses']}m, "
            f"calibration {stats['calibration_hits']}h/{stats['calibration_misses']}m"
        )

    print("\n=== Serving a cached figure (content-addressed result store) ===")
    from repro.store import ResultStore
    from repro.suite import figure2_scenario
    from repro.suite.runner import run_scenario

    scenario = figure2_scenario(small=True, devices=["IonQ-11Q"], families=["ghz"])
    knobs = dict(shots=250, repetitions=2, seed=1234, trajectories=40)
    with ResultStore() as store:  # pass a path ("results.sqlite") to persist
        cold = run_scenario(scenario, store=store, **knobs)
        warm = run_scenario(scenario, store=store, **knobs)
        assert warm.scores() == cold.scores()
        warm_stats = next(iter(warm.engine_stats.values()))
        print(f"cold pass: {len(cold.runs())} units simulated and stored")
        print(
            f"warm pass: {warm_stats['store_hits']} store hits, "
            f"{warm_stats['executions']} backend executions — served from sqlite"
        )
        print("same store behind HTTP:  repro serve --store results.sqlite")

    print("\n=== Process-parallel execution (docs/distributed.md) ===")
    parallel = run_scenario(scenario, executor="process", processes=2, **knobs)
    assert parallel.scores() == cold.scores()  # bit-identical across executors
    workers = [key for key in parallel.engine_stats if key.startswith("worker-")]
    print(f"{len(parallel.runs())} units on {len(workers)} worker processes; "
          "same scores as the threaded run")
    print("CLI equivalent:  repro run figure2 --processes 4")

    print("\n=== Tracing the sweep (docs/telemetry.md) ===")
    from collections import Counter

    from repro.telemetry import configure_tracing

    tracer = configure_tracing(enabled=True, seed=7)
    run_scenario(scenario, executor="process", processes=2, **knobs)
    spans = tracer.drain()
    tracer.enabled = False
    counts = Counter(span.name for span in spans)
    print(f"{len(spans)} spans, one merged trace across "
          f"{len({span.process for span in spans})} OS processes:")
    for name, count in counts.most_common(6):
        print(f"  {count:>3}x {name}")
    print("CLI equivalent:  repro run figure2 --processes 2 --trace trace.json")
    print("                 (open trace.json at https://ui.perfetto.dev)")
    print("metrics scrape:  curl localhost:8736/metrics   (while `repro serve` runs)")


if __name__ == "__main__":
    main()
