#!/usr/bin/env python3
"""Cross-platform comparison: a mini version of the paper's Fig. 2 + Fig. 3.

Runs a handful of benchmark instances on three device models (two
superconducting, one trapped-ion) through the unified execution engine,
prints the score table, and then computes the per-device correlation between
the application features and the scores.

One :class:`~repro.execution.ExecutionEngine` is created per device: the
engine transpiles each benchmark circuit exactly once (the compilation is
reused across repetitions) and fans the shots out over a small worker pool.
Swap the
``backend=`` argument for ``"statevector"`` (ideal) or ``"density_matrix"``
(exact noisy, small circuits only) to change how the circuits are simulated.

Run with:  python examples/cross_platform_comparison.py
(The full nine-device sweep is available via repro.experiments.reproduce_figure2.)
"""

from __future__ import annotations

from repro.benchmarks import (
    BitCodeBenchmark,
    GHZBenchmark,
    HamiltonianSimulationBenchmark,
    VanillaQAOABenchmark,
)
from repro.devices import get_device
from repro.exceptions import BackendCapacityError, DeviceError
from repro.execution import ExecutionEngine, TrajectoryBackend
from repro.experiments import render_figure2, render_figure3

DEVICES = ["IBM-Casablanca-7Q", "IBM-Toronto-27Q", "IonQ-11Q"]
BENCHMARKS = [
    GHZBenchmark(3),
    GHZBenchmark(7),
    BitCodeBenchmark(3, 2),
    VanillaQAOABenchmark(4, seed=0),
    HamiltonianSimulationBenchmark(4, steps=1),
]


def main() -> None:
    runs = []
    for device_name in DEVICES:
        device = get_device(device_name)
        with ExecutionEngine(
            device, backend=TrajectoryBackend(trajectories=40), max_workers=4
        ) as engine:
            for benchmark in BENCHMARKS:
                try:
                    run = engine.run(benchmark, shots=200, repetitions=2, seed=7)
                except BackendCapacityError as error:
                    print(f"  [skip] {error}")
                    continue
                except DeviceError:
                    print(f"  [skip] {benchmark} does not fit on {device.name}")
                    continue
                runs.append(run)
                print(
                    f"  {str(benchmark):<28s} on {device.name:<20s} "
                    f"score = {run.mean_score:.3f} ± {run.std_score:.3f} "
                    f"(swaps={run.swap_count})"
                )
            stats = engine.stats()
            print(
                f"  [{device.name}] transpiled {stats['misses']} unique circuits "
                f"(compilations reused across all repetitions)"
            )

    print("\n=== Score table (mini Fig. 2) ===")
    print(render_figure2(runs))

    print("\n=== Feature/performance correlation (mini Fig. 3a) ===")
    print(render_figure3(runs, include_error_correction=True))

    print("\n=== Excluding error-correction benchmarks (mini Fig. 3b) ===")
    print(render_figure3(runs, include_error_correction=False))


if __name__ == "__main__":
    main()
