"""Tests for the classical optimizers."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.optimize import grid_search, minimize_nelder_mead, minimize_spsa


def quadratic(x):
    return float(np.sum((np.asarray(x) - 1.5) ** 2))


def rosenbrock(x):
    x = np.asarray(x)
    return float((1 - x[0]) ** 2 + 100 * (x[1] - x[0] ** 2) ** 2)


class TestNelderMead:
    def test_minimises_quadratic(self):
        result = minimize_nelder_mead(quadratic, [0.0, 0.0, 0.0])
        assert result.value < 1e-6
        assert np.allclose(result.parameters, 1.5, atol=1e-2)

    def test_minimises_rosenbrock(self):
        result = minimize_nelder_mead(rosenbrock, [-0.5, 0.5], max_iterations=2000)
        assert result.value < 1e-3

    def test_reports_evaluation_count(self):
        result = minimize_nelder_mead(quadratic, [0.0])
        assert result.evaluations > 0

    def test_empty_initial_rejected(self):
        with pytest.raises(ReproError):
            minimize_nelder_mead(quadratic, [])

    def test_converged_flag_set_on_easy_problem(self):
        result = minimize_nelder_mead(quadratic, [0.2, 0.3])
        assert result.converged


class TestSPSA:
    def test_minimises_quadratic(self):
        result = minimize_spsa(quadratic, [0.0, 0.0], max_iterations=300, seed=0)
        assert result.value < 0.05

    def test_handles_noisy_objective(self):
        rng = np.random.default_rng(0)

        def noisy(x):
            return quadratic(x) + rng.normal(scale=0.01)

        result = minimize_spsa(noisy, [0.0, 0.0], max_iterations=300, seed=1)
        assert quadratic(result.parameters) < 0.2

    def test_empty_initial_rejected(self):
        with pytest.raises(ReproError):
            minimize_spsa(quadratic, [])


class TestGridSearch:
    def test_finds_minimum_on_grid(self):
        result = grid_search(quadratic, [(-2, 2), (-2, 2)], resolution=41)
        assert result.value < 0.05

    def test_dimension_limits(self):
        with pytest.raises(ReproError):
            grid_search(quadratic, [])
        with pytest.raises(ReproError):
            grid_search(quadratic, [(-1, 1)] * 4)
