"""Guards for the single-pass feature extractor.

Three layers of protection against the rewrite drifting from the seed
per-feature implementations:

* golden feature vectors for one instance of each of the eight benchmark
  families, captured from the seed implementation at full float precision;
* exact (``==``, not approx) parity against reference implementations built
  on the unchanged :class:`~repro.circuits.Circuit` structural queries
  (``interaction_graph``, ``two_qubit_critical_path``, ``moments``,
  ``liveness_matrix``) over randomized circuits with mid-circuit
  measurement and reset;
* property tests: every feature in [0, 1], and parallelism monotone under
  moment-packing (serialising a circuit with barriers can only lower it).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.benchmarks import (
    BitCodeBenchmark,
    GHZBenchmark,
    HamiltonianSimulationBenchmark,
    MerminBellBenchmark,
    PhaseCodeBenchmark,
    VQEBenchmark,
    VanillaQAOABenchmark,
    ZZSwapQAOABenchmark,
)
from repro.circuits import Circuit, circuit_moments, liveness_matrix, random_clifford_circuit
from repro.features import (
    FEATURE_NAMES,
    circuit_profile,
    compute_features,
    compute_features_many,
    parallelism,
)

# ---------------------------------------------------------------------------
# golden vectors (seed implementation, full float precision)
# ---------------------------------------------------------------------------

#: (program_communication, critical_depth, entanglement_ratio, parallelism,
#:  liveness, measurement) of each family's representative circuit, computed
#: with the seed per-feature implementation before the single-pass rewrite.
GOLDEN_FEATURES = {
    "ghz": (0.4, 1.0, 0.4, 0.16666666666666669, 0.4666666666666667, 0.0),
    "mermin_bell": (
        0.6666666666666666, 1.0, 0.18181818181818182,
        0.41666666666666663, 0.7222222222222222, 0.0,
    ),
    "bit_code": (0.4, 0.75, 0.4, 0.25, 0.56, 0.8),
    "phase_code": (
        0.4, 0.75, 0.25806451612903225,
        0.3035714285714286, 0.5571428571428572, 0.5714285714285714,
    ),
    "vanilla_qaoa": (
        1.0, 0.8333333333333334, 0.3333333333333333,
        0.4166666666666667, 0.75, 0.0,
    ),
    "zzswap_qaoa": (
        0.5, 0.6666666666666666, 0.3333333333333333,
        0.5238095238095238, 0.8571428571428571, 0.0,
    ),
    "vqe": (0.5, 1.0, 0.13043478260869565, 0.625, 0.8125, 0.0),
    "hamiltonian_simulation": (
        0.5, 1.0, 0.2727272727272727, 0.4000000000000001, 0.7, 0.0,
    ),
}

GOLDEN_INSTANCES = {
    "ghz": lambda: GHZBenchmark(5),
    "mermin_bell": lambda: MerminBellBenchmark(3),
    "bit_code": lambda: BitCodeBenchmark(3, 2),
    "phase_code": lambda: PhaseCodeBenchmark(3, 2),
    "vanilla_qaoa": lambda: VanillaQAOABenchmark(4),
    "zzswap_qaoa": lambda: ZZSwapQAOABenchmark(4),
    "vqe": lambda: VQEBenchmark(4, 1),
    "hamiltonian_simulation": lambda: HamiltonianSimulationBenchmark(4, steps=1),
}


@pytest.mark.parametrize("family", sorted(GOLDEN_FEATURES))
def test_golden_feature_vectors_bit_identical(family):
    benchmark = GOLDEN_INSTANCES[family]()
    got = tuple(float(v) for v in compute_features(benchmark.circuit()).as_array())
    assert got == GOLDEN_FEATURES[family]


# ---------------------------------------------------------------------------
# reference-implementation parity (seed structural queries on Circuit)
# ---------------------------------------------------------------------------


def reference_features(circuit):
    """The seed per-feature definitions, re-expressed on the (unchanged)
    Circuit structural queries — six independent traversals."""

    def clip(value):
        return float(min(max(value, 0.0), 1.0))

    n = circuit.num_qubits
    if n <= 1:
        communication = 0.0
    else:
        degree_sum = sum(dict(circuit.interaction_graph().degree()).values())
        communication = clip(degree_sum / (n * (n - 1)))

    total_two_qubit = circuit.num_two_qubit_gates()
    if total_two_qubit == 0:
        critical = 0.0
    else:
        on_path, _ = circuit.two_qubit_critical_path()
        critical = clip(on_path / total_two_qubit)

    total = circuit.num_gates(include_measurements=True)
    entanglement = clip(circuit.num_two_qubit_gates() / total) if total else 0.0

    depth = circuit.depth()
    if n <= 1 or depth == 0:
        parallel = 0.0
    else:
        parallel = clip((total / depth - 1.0) / (n - 1.0))

    matrix = liveness_matrix(circuit)
    live = clip(float(matrix.sum()) / matrix.size) if matrix.size else 0.0

    layers = circuit_moments(circuit)
    if not layers:
        measure = 0.0
    else:
        collapse = _mid_circuit_collapse_reference(circuit)
        with_collapse = sum(
            1 for layer in layers if any(id(op) in collapse for op in layer)
        )
        measure = clip(with_collapse / len(layers))

    return (communication, critical, entanglement, parallel, live, measure)


def _mid_circuit_collapse_reference(circuit):
    """The seed backward-pass mid-circuit collapse detection."""
    touched_later = set()
    collapse = set()
    for instruction in reversed(list(circuit)):
        if instruction.is_barrier():
            continue
        if instruction.is_reset():
            collapse.add(id(instruction))
            touched_later.update(instruction.qubits)
        elif instruction.is_measurement():
            if instruction.qubits[0] in touched_later:
                collapse.add(id(instruction))
            touched_later.add(instruction.qubits[0])
        else:
            touched_later.update(instruction.qubits)
    return collapse


def _messy_circuit(num_qubits, seed):
    """Random circuit with barriers, mid-circuit measurement and reset."""
    rng = np.random.default_rng(seed)
    circuit = random_clifford_circuit(num_qubits, 25, rng=seed)
    for _ in range(3):
        q = int(rng.integers(num_qubits))
        circuit.measure(q, q)
        if rng.random() < 0.5:
            circuit.reset(q)
        circuit.barrier(*range(int(rng.integers(1, num_qubits + 1))))
        circuit.h(int(rng.integers(num_qubits)))
    circuit.measure_all()
    return circuit


@given(num_qubits=st.integers(2, 6), seed=st.integers(0, 500))
@settings(max_examples=60, deadline=None)
def test_single_pass_matches_reference_exactly(num_qubits, seed):
    circuit = _messy_circuit(num_qubits, seed)
    got = tuple(float(v) for v in compute_features(circuit).as_array())
    assert got == reference_features(circuit)


@pytest.mark.parametrize(
    "circuit",
    [
        Circuit(3),
        Circuit(1).h(0),
        Circuit(2).barrier(),
        Circuit(2, 2).measure(0, 0).measure(1, 1),
        Circuit(2).reset(0),
        Circuit(3).ccx(0, 1, 2),
    ],
    ids=["empty", "single-qubit", "barrier-only", "measure-only", "reset-only", "toffoli"],
)
def test_edge_cases_match_reference(circuit):
    got = tuple(float(v) for v in compute_features(circuit).as_array())
    assert got == reference_features(circuit)


# ---------------------------------------------------------------------------
# property tests
# ---------------------------------------------------------------------------


@given(num_qubits=st.integers(2, 6), seed=st.integers(0, 300))
@settings(max_examples=40, deadline=None)
def test_all_features_in_unit_interval(num_qubits, seed):
    vector = compute_features(_messy_circuit(num_qubits, seed)).as_array()
    assert np.all(vector >= 0.0)
    assert np.all(vector <= 1.0)


@given(num_qubits=st.integers(2, 6), seed=st.integers(0, 300))
@settings(max_examples=40, deadline=None)
def test_parallelism_monotone_under_moment_packing(num_qubits, seed):
    """Fully serialising a circuit (a barrier after every instruction) can
    only lower parallelism: same operations, at least as many moments."""
    packed = random_clifford_circuit(num_qubits, 20, rng=seed)
    serial = Circuit(packed.num_qubits, packed.num_clbits)
    for instruction in packed:
        serial.append(instruction)
        serial.barrier()
    assert parallelism(packed) >= parallelism(serial)
    packed_profile = circuit_profile(packed)
    serial_profile = circuit_profile(serial)
    assert serial_profile.depth >= packed_profile.depth
    assert serial_profile.total_operations == packed_profile.total_operations


# ---------------------------------------------------------------------------
# batched API and profile invariants
# ---------------------------------------------------------------------------


def test_compute_features_many_matches_single():
    circuits = [GOLDEN_INSTANCES[f]().circuit() for f in sorted(GOLDEN_FEATURES)]
    matrix = compute_features_many(circuits)
    assert matrix.shape == (len(circuits), len(FEATURE_NAMES))
    for row, circuit in zip(matrix, circuits):
        assert tuple(float(v) for v in row) == tuple(
            float(v) for v in compute_features(circuit).as_array()
        )


def test_compute_features_many_empty():
    assert compute_features_many([]).shape == (0, 6)


def test_profile_moment_accounting():
    circuit = GHZBenchmark(5).circuit()
    profile = circuit_profile(circuit)
    assert int(profile.moment_operations.sum()) == profile.total_operations
    assert len(profile.moment_operations) == profile.depth
    assert profile.depth == circuit.depth()
    assert profile.qubit_touches == int(liveness_matrix(circuit).sum())
