"""Packed-vs-object parity of feature extraction and trajectory plans.

The columnar port keeps two extractor paths alive: the vectorised row-DAG
fast path (barrier-free, <=2-qubit circuits) and the general object-walk
port (everything else).  These tests pin the two paths to each other and pin
plan compilation from packed rows to an object-walk reference, across one
instance of each of the eight benchmark families plus randomized circuits.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.benchmarks import (
    BitCodeBenchmark,
    GHZBenchmark,
    HamiltonianSimulationBenchmark,
    MerminBellBenchmark,
    PhaseCodeBenchmark,
    VQEBenchmark,
    VanillaQAOABenchmark,
    ZZSwapQAOABenchmark,
)
from repro.circuits import Circuit, random_clifford_circuit
from repro.features import packed_profile
from repro.features.features import _packed_profile_fast, _packed_profile_general
from repro.simulation.kernels import kernel_for_gate
from repro.simulation.noise_model import NoiseModel
from repro.simulation.statevector import (
    _ChannelStep,
    _GateStep,
    _MeasureStep,
    _ResetStep,
    _compile_trajectory_plan,
)

FAMILY_INSTANCES = {
    "ghz": GHZBenchmark(5),
    "mermin_bell": MerminBellBenchmark(3),
    "bit_code": BitCodeBenchmark(3, 2),
    "phase_code": PhaseCodeBenchmark(3, 2),
    "vanilla_qaoa": VanillaQAOABenchmark(4),
    "zzswap_qaoa": ZZSwapQAOABenchmark(4),
    "vqe": VQEBenchmark(4, 1),
    "hamiltonian_simulation": HamiltonianSimulationBenchmark(4, steps=1),
}

PROFILE_FIELDS = (
    "num_qubits",
    "depth",
    "total_operations",
    "two_qubit_operations",
    "interaction_edges",
    "qubit_touches",
    "critical_length",
    "critical_two_qubit",
    "collapse_layers",
)


def _assert_profiles_equal(left, right, label=""):
    for name in PROFILE_FIELDS:
        assert getattr(left, name) == getattr(right, name), f"{label}:{name}"
    assert left.moment_operations.tolist() == right.moment_operations.tolist(), label


def _fast_eligible(packed) -> bool:
    from repro.circuits import BARRIER_OP

    if len(packed) == 0 or packed.has_wide_rows:
        return False
    if bool((packed.qubits[:, 2] >= 0).any()):
        return False
    return not bool((packed.opcodes == BARRIER_OP).any())


# ---------------------------------------------------------------------------
# features
# ---------------------------------------------------------------------------
class TestFeatureParity:
    def test_families_fast_vs_general(self):
        # every family circuit: the dispatching extractor agrees field-by-field
        # with the general object-walk port, and with the fast path whenever
        # the circuit is fast-eligible.
        for family, benchmark in FAMILY_INSTANCES.items():
            for index, circuit in enumerate(benchmark.circuits()):
                packed = circuit.packed()
                label = f"{family}[{index}]"
                dispatched = packed_profile(packed)
                general = _packed_profile_general(packed)
                _assert_profiles_equal(dispatched, general, label)
                if _fast_eligible(packed):
                    _assert_profiles_equal(_packed_profile_fast(packed), general, label)

    def test_families_all_take_the_fast_path(self):
        # The eight families compile to barrier-free <=2-qubit streams, so the
        # hot suite path is the vectorised DP; if a family ever stops being
        # eligible this flags the (silent) perf regression.
        for family, benchmark in FAMILY_INSTANCES.items():
            for index, circuit in enumerate(benchmark.circuits()):
                assert _fast_eligible(circuit.packed()), f"{family}[{index}]"

    @given(num_qubits=st.integers(2, 7), seed=st.integers(0, 2000))
    @settings(max_examples=40, deadline=None)
    def test_trailing_barrier_routes_general_with_same_profile(self, num_qubits, seed):
        # A trailing barrier is profile-neutral (no operations follow it) but
        # disqualifies the fast path — so the same statistics computed by the
        # two paths must agree exactly.
        circuit = random_clifford_circuit(num_qubits, 30, rng=seed).measure_all()
        fast = packed_profile(circuit.packed())
        assert _fast_eligible(circuit.packed())
        circuit.barrier()
        packed = circuit.packed()
        assert not _fast_eligible(packed)
        general = packed_profile(packed)
        # total_operations/moments exclude barriers, so every field matches.
        _assert_profiles_equal(fast, general)

    @given(num_qubits=st.integers(2, 7), seed=st.integers(0, 2000))
    @settings(max_examples=60, deadline=None)
    def test_random_fast_vs_general(self, num_qubits, seed):
        # barrier-free 1q/2q streams with mid-circuit measure/reset: always
        # fast-eligible, so this pins the DP fast path to the object-walk port.
        rng = np.random.default_rng(seed)
        circuit = random_clifford_circuit(num_qubits, int(rng.integers(1, 50)), rng=seed)
        for _ in range(int(rng.integers(0, 4))):
            circuit.measure(int(rng.integers(num_qubits)), 0)
            if rng.random() < 0.5:
                circuit.reset(int(rng.integers(num_qubits)))
            circuit.h(int(rng.integers(num_qubits)))
        circuit.measure_all()
        packed = circuit.packed()
        assert _fast_eligible(packed)
        _assert_profiles_equal(_packed_profile_fast(packed), _packed_profile_general(packed))


# ---------------------------------------------------------------------------
# trajectory plans
# ---------------------------------------------------------------------------
def _reference_plan_shape(circuit: Circuit, noise_model):
    """Object-walk reference of the compiled plan's step shape.

    Walks ``circuit.instructions`` (never the packed form) and mirrors the
    compile loop's semantics — barrier skipping, terminal-measurement
    deferral, per-gate noise channels, unitary runs — without fusing, so runs
    are described by their (qubits, kernel-kind) content rather than the
    fused kernels themselves.
    """
    terminal: dict[int, int] = {}
    last_touch: dict[int, int] = {}
    for index, instruction in enumerate(circuit):
        if instruction.is_barrier():
            continue
        for q in instruction.qubits:
            last_touch[q] = index
    shape = []
    for index, instruction in enumerate(circuit):
        if instruction.is_barrier():
            continue
        if instruction.is_measurement():
            qubit = instruction.qubits[0]
            if last_touch[qubit] == index:
                terminal[qubit] = instruction.clbits[0]
                continue
            shape.append(("measure", qubit, instruction.clbits[0]))
            if noise_model is not None:
                for _channel, qubits in noise_model.measurement_channels(qubit):
                    shape.append(("channel", tuple(qubits)))
            continue
        if instruction.is_reset():
            shape.append(("reset", instruction.qubits[0]))
            if noise_model is not None:
                for _channel, qubits in noise_model.reset_channels(instruction.qubits[0]):
                    shape.append(("channel", tuple(qubits)))
            continue
        channels = noise_model.gate_channels(instruction) if noise_model is not None else []
        shape.append(("gate", instruction.qubits, kernel_for_gate(instruction.gate).kind))
        for _channel, qubits in channels:
            shape.append(("channel", tuple(qubits)))
    return shape, sorted(terminal.items())


def _compiled_plan_shape(circuit: Circuit, noise_model):
    """The same shape extracted from the packed-row compiled plan."""
    plan = _compile_trajectory_plan(circuit, noise_model)
    shape = []
    for step in plan.prefix + plan.suffix:
        if isinstance(step, _GateStep):
            shape.append(("gate", step.qubits, step.kernel.kind))
        elif isinstance(step, _ChannelStep):
            shape.append(("channel", step.qubits))
        elif isinstance(step, _MeasureStep):
            shape.append(("measure", step.qubit, step.clbit))
        elif isinstance(step, _ResetStep):
            shape.append(("reset", step.qubit))
    return shape, sorted(plan.terminal)


class TestPlanParity:
    def test_families_noisy_plan_matches_object_walk(self):
        # Under a noise model every gate flushes its own run, so the compiled
        # steps correspond 1:1 with the reference walk — an exact shape pin.
        for family, benchmark in FAMILY_INSTANCES.items():
            for index, circuit in enumerate(benchmark.circuits()):
                model = NoiseModel.uniform(circuit.num_qubits)
                expected = _reference_plan_shape(circuit, model)
                observed = _compiled_plan_shape(circuit, model)
                assert observed == expected, f"{family}[{index}]"

    def test_families_noiseless_plan_collapse_points_match(self):
        # Without noise, unitary runs fuse — but every collapse point
        # (mid-circuit measure/reset) and the terminal map must line up with
        # the object-walk reference exactly.
        for family, benchmark in FAMILY_INSTANCES.items():
            for index, circuit in enumerate(benchmark.circuits()):
                ref_shape, ref_terminal = _reference_plan_shape(circuit, None)
                obs_shape, obs_terminal = _compiled_plan_shape(circuit, None)
                keep = ("measure", "reset")
                assert [s for s in obs_shape if s[0] in keep] == [
                    s for s in ref_shape if s[0] in keep
                ], f"{family}[{index}]"
                assert obs_terminal == ref_terminal, f"{family}[{index}]"
