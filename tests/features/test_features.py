"""Tests for the six SupermarQ feature definitions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, random_clifford_circuit
from repro.features import (
    FEATURE_NAMES,
    compute_features,
    critical_depth,
    entanglement_ratio,
    feature_vector,
    liveness,
    measurement,
    parallelism,
    program_communication,
    typical_features,
)


def _ghz(n):
    circuit = Circuit(n).h(0)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    return circuit


class TestProgramCommunication:
    def test_ghz_ladder_matches_formula(self):
        # Interaction graph of a 4-qubit ladder is a path: degrees 1,2,2,1.
        assert program_communication(_ghz(4)) == pytest.approx(6 / 12)

    def test_complete_interaction_is_one(self):
        circuit = Circuit(3).cx(0, 1).cx(1, 2).cx(0, 2)
        assert program_communication(circuit) == pytest.approx(1.0)

    def test_no_interactions_is_zero(self):
        assert program_communication(Circuit(3).h(0).h(1)) == 0.0

    def test_single_qubit_circuit(self):
        assert program_communication(Circuit(1).h(0)) == 0.0


class TestCriticalDepth:
    def test_fully_serial_ladder_is_one(self):
        circuit = Circuit(3).cx(0, 1).cx(1, 2).cx(0, 1)
        assert critical_depth(circuit) == pytest.approx(1.0)

    def test_parallel_pairs_reduce_value(self):
        circuit = Circuit(4).cx(0, 1).cx(2, 3)
        assert critical_depth(circuit) == pytest.approx(0.5)

    def test_no_two_qubit_gates_is_zero(self):
        assert critical_depth(Circuit(2).h(0).h(1)) == 0.0


class TestEntanglementRatio:
    def test_half_entangling(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        assert entanglement_ratio(circuit) == pytest.approx(0.5)

    def test_all_entangling(self):
        circuit = Circuit(2).cx(0, 1).cx(1, 0)
        assert entanglement_ratio(circuit) == pytest.approx(1.0)

    def test_empty_circuit(self):
        assert entanglement_ratio(Circuit(2)) == 0.0

    def test_measurements_count_as_operations(self):
        circuit = Circuit(2).cx(0, 1).measure_all()
        assert entanglement_ratio(circuit) == pytest.approx(1 / 3)


class TestParallelism:
    def test_fully_parallel_layer(self):
        circuit = Circuit(4).h(0).h(1).h(2).h(3)
        assert parallelism(circuit) == pytest.approx(1.0)

    def test_fully_serial_single_qubit(self):
        circuit = Circuit(2)
        for _ in range(5):
            circuit.h(0)
        assert parallelism(circuit) == 0.0

    def test_empty_circuit(self):
        assert parallelism(Circuit(3)) == 0.0


class TestLiveness:
    def test_always_active(self):
        circuit = Circuit(2).h(0).h(1).cx(0, 1)
        assert liveness(circuit) == pytest.approx(1.0)

    def test_idle_qubit_halves_liveness(self):
        circuit = Circuit(2).h(0).h(0)
        assert liveness(circuit) == pytest.approx(0.5)

    def test_empty_circuit(self):
        assert liveness(Circuit(2)) == 0.0


class TestMeasurementFeature:
    def test_no_measurement(self):
        assert measurement(_ghz(3)) == 0.0

    def test_terminal_measurement_not_counted(self):
        circuit = _ghz(3).measure_all()
        assert measurement(circuit) == 0.0

    def test_mid_circuit_measurement_counted(self):
        circuit = Circuit(2, 2).h(0).measure(0, 0).x(0).measure(1, 1)
        assert measurement(circuit) > 0.0

    def test_reset_counted(self):
        circuit = Circuit(2).h(0).reset(1).cx(0, 1)
        assert measurement(circuit) > 0.0

    def test_error_correction_benchmark_has_high_measurement(self):
        from repro.benchmarks import BitCodeBenchmark, GHZBenchmark

        bit_code = BitCodeBenchmark(3, 3).features().measurement
        ghz = GHZBenchmark(5).features().measurement
        assert bit_code > ghz


class TestFeatureVector:
    def test_vector_matches_named_features(self):
        circuit = _ghz(4).measure_all()
        vector = feature_vector(circuit)
        named = compute_features(circuit).as_dict()
        assert np.allclose(vector, [named[name] for name in FEATURE_NAMES])

    def test_typical_features(self):
        circuit = _ghz(4)
        typical = typical_features(circuit)
        assert typical["num_qubits"] == 4
        assert typical["num_two_qubit_gates"] == 3
        assert typical["depth"] == 4

    @given(num_qubits=st.integers(2, 6), seed=st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_all_features_in_unit_interval(self, num_qubits, seed):
        circuit = random_clifford_circuit(num_qubits, 30, rng=seed)
        circuit.measure_all()
        vector = feature_vector(circuit)
        assert np.all(vector >= 0.0)
        assert np.all(vector <= 1.0)

    def test_paper_figure1_qualitative_shapes(self):
        """GHZ: serial, low parallelism; QAOA on complete graphs: high communication."""
        from repro.benchmarks import GHZBenchmark, VanillaQAOABenchmark

        ghz = GHZBenchmark(5).features()
        qaoa = VanillaQAOABenchmark(5).features()
        assert ghz.critical_depth == pytest.approx(1.0)
        assert qaoa.program_communication == pytest.approx(1.0)
        assert qaoa.parallelism > ghz.parallelism
