"""Tests for device models and the Table II library."""

import networkx as nx
import pytest

from repro.devices import Calibration, DEVICE_LIBRARY, Device, all_devices, device_names, get_device
from repro.exceptions import DeviceError


class TestCalibration:
    def test_invalid_times_rejected(self):
        with pytest.raises(DeviceError):
            Calibration(-1, 1, 0.1, 0.1, 1, 0.01, 0.01, 0.01)

    def test_invalid_error_rejected(self):
        with pytest.raises(DeviceError):
            Calibration(1, 1, 0.1, 0.1, 1, 0.01, 2.0, 0.01)


class TestDeviceLibrary:
    def test_nine_devices_registered(self):
        assert len(DEVICE_LIBRARY) == 9

    def test_lookup_by_name_and_prefix(self):
        assert get_device("IonQ-11Q").num_qubits == 11
        assert get_device("ionq").name == "IonQ-11Q"

    def test_ambiguous_prefix_rejected(self):
        with pytest.raises(DeviceError):
            get_device("IBM")

    def test_unknown_device_rejected(self):
        with pytest.raises(DeviceError):
            get_device("Sycamore")

    def test_device_names_order_stable(self):
        assert device_names()[0] == "AQT-4Q"

    @pytest.mark.parametrize("device", all_devices(), ids=lambda d: d.name)
    def test_topologies_are_connected(self, device):
        assert nx.is_connected(device.topology())

    @pytest.mark.parametrize("device", all_devices(), ids=lambda d: d.name)
    def test_table_rows_have_expected_fields(self, device):
        row = device.table_row()
        assert row["qubits"] == device.num_qubits
        assert 0 <= row["error_2q_pct"] <= 100

    def test_paper_quoted_values(self):
        casablanca = get_device("IBM-Casablanca-7Q")
        assert casablanca.calibration.t1 == pytest.approx(91.21)
        assert casablanca.calibration.error_2q == pytest.approx(0.0083)
        ionq = get_device("IonQ-11Q")
        assert ionq.all_to_all
        assert ionq.calibration.gate_time_2q == pytest.approx(210.0)
        aqt = get_device("AQT-4Q")
        assert aqt.calibration.readout_error == pytest.approx(0.0125)

    def test_estimated_flags(self):
        assert get_device("IBM-Lagos-7Q").calibration_estimated
        assert not get_device("IBM-Montreal-27Q").calibration_estimated


class TestDeviceBehaviour:
    def test_all_to_all_connectivity(self):
        ionq = get_device("IonQ-11Q")
        assert ionq.are_connected(0, 10)
        assert not ionq.are_connected(3, 3)

    def test_sparse_connectivity(self):
        casablanca = get_device("IBM-Casablanca-7Q")
        assert casablanca.are_connected(0, 1)
        assert not casablanca.are_connected(0, 6)

    def test_average_degree(self):
        assert get_device("IonQ-11Q").average_degree() == pytest.approx(10.0)

    def test_noise_model_dimensions(self):
        device = get_device("IBM-Guadalupe-16Q")
        model = device.noise_model()
        assert model.num_qubits == 16
        subset = device.noise_model(qubits=[3, 5, 8])
        assert subset.num_qubits == 3

    def test_noise_model_reflects_calibration(self):
        device = get_device("IBM-Montreal-27Q")
        model = device.noise_model()
        assert model.error_1q[0] == pytest.approx(device.calibration.error_1q)
        assert model.readout_error[0] == pytest.approx(device.calibration.readout_error)

    def test_zero_qubit_noise_model_rejected(self):
        with pytest.raises(DeviceError):
            get_device("AQT-4Q").noise_model(qubits=[])
