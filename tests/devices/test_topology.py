"""Tests for device topologies."""

import networkx as nx
import pytest

from repro.devices import (
    all_to_all_topology,
    grid_topology,
    heavy_hex_topology,
    line_topology,
    ring_topology,
    topology_from_edges,
)
from repro.exceptions import DeviceError


class TestGenericTopologies:
    def test_line(self):
        graph = line_topology(5)
        assert graph.number_of_edges() == 4
        assert nx.is_connected(graph)

    def test_ring(self):
        graph = ring_topology(6)
        assert graph.number_of_edges() == 6
        assert all(degree == 2 for _node, degree in graph.degree())

    def test_small_ring_degenerates_to_line(self):
        assert ring_topology(2).number_of_edges() == 1

    def test_grid(self):
        graph = grid_topology(3, 4)
        assert graph.number_of_nodes() == 12
        assert graph.number_of_edges() == 3 * 3 + 2 * 4

    def test_all_to_all(self):
        graph = all_to_all_topology(5)
        assert graph.number_of_edges() == 10

    def test_invalid_edges_rejected(self):
        with pytest.raises(DeviceError):
            topology_from_edges(2, [(0, 5)])
        with pytest.raises(DeviceError):
            topology_from_edges(2, [(1, 1)])


class TestHeavyHex:
    @pytest.mark.parametrize("size,edges", [(7, 6), (16, 16), (27, 28)])
    def test_known_sizes(self, size, edges):
        graph = heavy_hex_topology(size)
        assert graph.number_of_nodes() == size
        assert graph.number_of_edges() == edges
        assert nx.is_connected(graph)

    def test_degree_bounded_by_three(self):
        graph = heavy_hex_topology(27)
        assert max(dict(graph.degree()).values()) <= 3

    def test_unknown_size_rejected(self):
        with pytest.raises(DeviceError):
            heavy_hex_topology(13)
