"""Integration tests for the REST surface (the `repro serve` acceptance path)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.exceptions import ServiceError
from repro.service import BenchmarkService
from repro.service.http import resolve_scenario
from repro.store import ResultStore
from repro.suite import figure2_scenario

KNOBS = {"shots": 60, "repetitions": 1, "seed": 99, "trajectories": 12}

SUBMISSION = {
    "scenario": "figure2",
    "options": {"small": True, "devices": ["IonQ-11Q"], "families": ["ghz"]},
    "knobs": KNOBS,
}


@pytest.fixture(scope="module")
def service():
    with ResultStore() as store:
        with BenchmarkService(store=store, port=0, workers=1) as service:
            yield service


def get_json(service, path):
    with urllib.request.urlopen(service.url + path) as response:
        return response.status, json.loads(response.read())


def post_json(service, path, body):
    request = urllib.request.Request(
        service.url + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


class TestEndToEnd:
    def test_submit_stream_and_query(self, service):
        """The acceptance test: a submitted scenario is answered end-to-end
        over HTTP with streamed NDJSON outcomes."""
        status, body = post_json(service, "/scenarios", SUBMISSION)
        assert status == 202
        job_id = body["job_id"]
        assert body["scenario"] == "figure2"

        # NDJSON stream: one outcome per line while the job runs, then an
        # end-of-stream marker.
        lines = []
        with urllib.request.urlopen(f"{service.url}/jobs/{job_id}/outcomes") as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            for line in response:
                lines.append(json.loads(line))
        assert lines[-1]["event"] == "end"
        assert lines[-1]["status"] == "done"
        outcomes = lines[:-1]
        assert len(outcomes) == 2
        assert all(outcome["status"] == "ok" for outcome in outcomes)
        assert {outcome["key"].split("|", 1)[0] for outcome in outcomes} == {
            "ghz(num_qubits=3)", "ghz(num_qubits=5)",
        }

        status, job = get_json(service, f"/jobs/{job_id}")
        assert status == 200
        assert job["status"] == "done"
        assert job["executed"] == 2

        status, results = get_json(service, "/results?family=ghz&device=IonQ-11Q")
        assert status == 200
        assert len(results["results"]) == 2

    def test_healthz_and_stats(self, service):
        assert get_json(service, "/healthz") == (200, {"status": "ok"})
        status, stats = get_json(service, "/stats")
        assert status == 200
        assert "queue" in stats and "store" in stats

    def test_jobs_listing(self, service):
        post_json(service, "/scenarios", SUBMISSION)
        status, body = get_json(service, "/jobs")
        assert status == 200
        assert len(body["jobs"]) >= 1

    def test_full_definition_submission(self, service):
        definition = figure2_scenario(
            small=True, devices=["IonQ-11Q"], families=["ghz"]
        ).as_dict()
        status, body = post_json(
            service, "/scenarios", {"definition": definition, "knobs": KNOBS}
        )
        assert status == 202
        status, job = get_json(service, f"/jobs/{body['job_id']}")
        assert job["scenario"] == "figure2"

    def test_cancel_endpoint(self, service):
        _, body = post_json(service, "/scenarios", SUBMISSION)
        request = urllib.request.Request(
            f"{service.url}/jobs/{body['job_id']}", method="DELETE"
        )
        with urllib.request.urlopen(request) as response:
            cancelled = json.loads(response.read())
        assert cancelled["cancelled"] in (True, False)


class TestErrorHandling:
    def expect_error(self, service, path, body=None, method=None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(service.url + path, data=data, method=method)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        return excinfo.value.code, json.loads(excinfo.value.read())

    def test_unknown_endpoint(self, service):
        code, body = self.expect_error(service, "/nope")
        assert code == 404
        assert "no such endpoint" in body["error"]

    def test_unknown_job(self, service):
        code, body = self.expect_error(service, "/jobs/job-999")
        assert code == 404

    def test_unknown_scenario_name(self, service):
        code, body = self.expect_error(
            service, "/scenarios", {"scenario": "nope"}, method="POST"
        )
        assert code == 400
        assert "unknown scenario" in body["error"]

    def test_empty_body(self, service):
        code, body = self.expect_error(service, "/scenarios", method="POST")
        assert code == 400

    def test_bad_query_filter(self, service):
        code, body = self.expect_error(service, "/results?bogus=1")
        assert code == 400
        assert "unknown query parameters" in body["error"]


class TestResolveScenario:
    def test_named(self):
        scenario = resolve_scenario({"scenario": "figure2", "options": {"small": True}})
        assert scenario.name == "figure2"

    def test_mitigated_alias(self):
        assert resolve_scenario({"scenario": "mitigated"}).name == "mitigated_scores"

    def test_definition(self):
        definition = figure2_scenario(small=True).as_dict()
        assert resolve_scenario({"definition": definition}).name == "figure2"

    def test_missing(self):
        with pytest.raises(ServiceError, match="needs a 'scenario'"):
            resolve_scenario({})

    def test_bad_options(self):
        with pytest.raises(ServiceError, match="bad options"):
            resolve_scenario({"scenario": "figure2", "options": {"bogus": 1}})

    def test_malformed_definition(self):
        with pytest.raises(ServiceError, match="malformed"):
            resolve_scenario({"definition": {"sweeps": []}})
