"""Service telemetry surfaces: /metrics, /jobs/<id>/trace, /stats metadata."""

import json
import re
import urllib.error
import urllib.request

import pytest

from repro.service import BenchmarkService
from repro.service.http import STATS_SCHEMA
from repro.service.jobs import JobQueue
from repro.suite import Scenario, Sweep
from repro.suite.results import SuiteResult
from repro.telemetry import configure_tracing, get_tracer

SCENARIO = Scenario(
    name="svc-telemetry",
    sweeps=(Sweep.of("ghz", num_qubits=(2,)),),
    devices=("IonQ-11Q",),
)

#: One Prometheus sample line: name + optional {labels} + space + number.
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? "
    r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|NaN)$"
)


def _instant_runner(scenario, **kwargs):
    with get_tracer().span("engine.run", benchmark="stub"):
        pass
    return SuiteResult(scenario=scenario.name)


@pytest.fixture
def traced():
    tracer = get_tracer()
    previous = (tracer.enabled, tracer.id_prefix)
    configure_tracing(enabled=True, seed=11)
    yield tracer
    tracer.clear()
    tracer.enabled, tracer.id_prefix = previous


@pytest.fixture
def service(traced):
    queue = JobQueue(workers=1, runner=_instant_runner)
    with BenchmarkService(queue=queue) as svc:
        yield svc


def _get(service, path):
    with urllib.request.urlopen(service.url + path) as response:
        return response.status, response.read().decode()


class TestMetricsEndpoint:
    def test_metrics_is_valid_prometheus_text(self, service):
        status, text = _get(service, "/metrics")
        assert status == 200
        lines = [line for line in text.splitlines() if line]
        assert lines, "empty exposition"
        for line in lines:
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) ", line), line
            else:
                assert _SAMPLE.match(line), line

    def test_metrics_exposes_job_and_request_counters(self, service):
        job_id = service.queue.submit(SCENARIO)
        service.queue.result(job_id, timeout=30)
        _get(service, "/healthz")
        _, text = _get(service, "/metrics")
        assert "repro_service_jobs{" in text
        assert "repro_http_requests_total{" in text
        assert 'route="/healthz"' in text


class TestTraceEndpoint:
    def test_job_trace_is_ndjson_spans(self, service):
        job_id = service.queue.submit(SCENARIO)
        service.queue.result(job_id, timeout=30)
        status, body = _get(service, f"/jobs/{job_id}/trace")
        assert status == 200
        spans = [json.loads(line) for line in body.splitlines()]
        names = {span["name"] for span in spans}
        assert "job.run" in names
        assert "engine.run" in names  # children share the job's trace
        assert len({span["trace_id"] for span in spans}) == 1

    def test_status_snapshot_carries_the_trace_id(self, service):
        job_id = service.queue.submit(SCENARIO)
        service.queue.result(job_id, timeout=30)
        status = service.queue.status(job_id)
        assert status["trace_id"]

    def test_unknown_job_is_a_404(self, service):
        try:
            _get(service, "/jobs/job-999/trace")
        except urllib.error.HTTPError as error:
            assert error.code == 404
        else:
            pytest.fail("expected a 404")


class TestStatsMetadata:
    def test_stats_reports_schema_version_and_uptime(self, service):
        _, body = _get(service, "/stats")
        stats = json.loads(body)
        assert stats["schema"] == STATS_SCHEMA
        assert isinstance(stats["version"], str) and stats["version"]
        assert stats["uptime_seconds"] >= 0
        assert isinstance(stats["queue"], dict)
