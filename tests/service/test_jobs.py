"""Tests for the in-process job queue: submit/status/result/cancel/retry."""

import threading
import time

import pytest

from repro.exceptions import ServiceError
from repro.service import JobQueue
from repro.store import ResultStore
from repro.suite import figure2_scenario
from repro.suite.results import SpecOutcome, SuiteResult
from repro.suite.sweep import Scenario, Sweep

KNOBS = dict(shots=60, repetitions=1, seed=99, trajectories=12)


def tiny_scenario():
    return figure2_scenario(small=True, devices=["IonQ-11Q"], families=["ghz"])


def make_outcome(key, index=0):
    return SpecOutcome(
        key=key,
        spec={"family": "ghz", "params": {"num_qubits": 3}},
        device="IonQ-11Q",
        mitigation="raw",
        index=index,
        status="skipped",
        reason="test",
    )


class TestJobQueueEndToEnd:
    def test_submit_runs_a_real_scenario(self):
        with JobQueue(workers=1) as jobs:
            job_id = jobs.submit(tiny_scenario(), **KNOBS)
            result = jobs.result(job_id, timeout=120)
            assert len(result.runs()) == 2
            status = jobs.status(job_id)
            assert status["status"] == "done"
            assert status["executed"] == 2
            assert status["attempts"] == 1

    def test_store_is_shared_across_jobs(self):
        with ResultStore() as store, JobQueue(store=store, workers=1) as jobs:
            first = jobs.result(jobs.submit(tiny_scenario(), **KNOBS), timeout=120)
            second = jobs.result(jobs.submit(tiny_scenario(), **KNOBS), timeout=120)
            assert second.scores() == first.scores()
            assert store.stats()["hits"] == len(second.runs())

    def test_streaming_outcomes(self):
        with JobQueue(workers=1) as jobs:
            job_id = jobs.submit(tiny_scenario(), **KNOBS)
            payloads = list(jobs.iter_outcomes(job_id, timeout=120))
            assert len(payloads) == 2
            assert all(payload["status"] == "ok" for payload in payloads)


class TestJobQueueSemantics:
    def test_submit_validates_scenario(self):
        with JobQueue(workers=1) as jobs:
            with pytest.raises(ServiceError, match="takes a Scenario"):
                jobs.submit("figure2")

    def test_unknown_job_id(self):
        with JobQueue(workers=1) as jobs:
            with pytest.raises(ServiceError, match="unknown job id"):
                jobs.status("job-999")

    def test_failed_job_retries_then_fails(self):
        attempts = []

        def flaky_runner(scenario, partial=None, on_outcome=None, **knobs):
            attempts.append(1)
            raise RuntimeError("boom")

        with JobQueue(workers=1, max_attempts=3, runner=flaky_runner) as jobs:
            job_id = jobs.submit(tiny_scenario())
            with pytest.raises(ServiceError, match="failed"):
                jobs.result(job_id, timeout=30)
            status = jobs.status(job_id)
            assert status["attempts"] == 3
            assert "RuntimeError: boom" in status["error"]
            assert jobs.stats()["retries"] == 2
        assert len(attempts) == 3

    def test_retry_resumes_partial_results(self):
        calls = []

        def crash_once_runner(scenario, partial=None, on_outcome=None, **knobs):
            calls.append(partial)
            outcome = make_outcome("unit-1")
            if outcome.key not in partial:
                partial.add(outcome)
                if on_outcome is not None:
                    on_outcome(outcome)
            if len(calls) == 1:
                raise RuntimeError("crash after first unit")
            second = make_outcome("unit-2", index=1)
            partial.add(second)
            if on_outcome is not None:
                on_outcome(second)
            return partial

        with JobQueue(workers=1, max_attempts=2, runner=crash_once_runner) as jobs:
            job_id = jobs.submit(tiny_scenario())
            result = jobs.result(job_id, timeout=30)
            # Both attempts received the same accumulating SuiteResult.
            assert calls[0] is calls[1]
            assert len(result) == 2
            assert jobs.status(job_id)["attempts"] == 2

    def test_cancel_queued_job(self):
        release = threading.Event()

        def blocking_runner(scenario, partial=None, on_outcome=None, **knobs):
            release.wait(timeout=30)
            return partial

        with JobQueue(workers=1, runner=blocking_runner) as jobs:
            blocker = jobs.submit(tiny_scenario())
            queued = jobs.submit(tiny_scenario())
            assert jobs.cancel(queued) is True
            assert jobs.status(queued)["status"] == "cancelled"
            release.set()
            jobs.result(blocker, timeout=30)
            # Cancelling a finished job is a no-op returning False.
            assert jobs.cancel(blocker) is False

    def test_cancel_running_job_stops_at_outcome_boundary(self):
        started = threading.Event()
        proceed = threading.Event()

        def slow_runner(scenario, partial=None, on_outcome=None, **knobs):
            for index in range(10):
                outcome = make_outcome(f"unit-{index}", index=index)
                partial.add(outcome)
                if on_outcome is not None:
                    on_outcome(outcome)  # raises JobCancelled once requested
                started.set()
                proceed.wait(timeout=30)
            return partial

        with JobQueue(workers=1, runner=slow_runner) as jobs:
            job_id = jobs.submit(tiny_scenario())
            assert started.wait(timeout=30)
            assert jobs.cancel(job_id) is True
            proceed.set()
            deadline = time.monotonic() + 30
            while jobs.status(job_id)["status"] == "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            status = jobs.status(job_id)
            assert status["status"] == "cancelled"
            assert status["outcomes"] < 10

    def test_result_timeout(self):
        def blocking_runner(scenario, partial=None, on_outcome=None, **knobs):
            time.sleep(5)
            return partial

        with JobQueue(workers=1, runner=blocking_runner) as jobs:
            job_id = jobs.submit(tiny_scenario())
            with pytest.raises(ServiceError, match="timed out"):
                jobs.result(job_id, timeout=0.2)

    def test_closed_queue_rejects_submissions(self):
        jobs = JobQueue(workers=1)
        jobs.close()
        with pytest.raises(ServiceError, match="closed"):
            jobs.submit(tiny_scenario())

    def test_constructor_validation(self):
        with pytest.raises(ServiceError):
            JobQueue(workers=0)
        with pytest.raises(ServiceError):
            JobQueue(max_attempts=0)
