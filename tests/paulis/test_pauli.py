"""Tests for Pauli strings and sums."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit
from repro.exceptions import AnalysisError
from repro.paulis import PauliString, PauliSum, PauliTerm
from repro.simulation import Counts, final_statevector


class TestPauliString:
    def test_identity_letters_dropped(self):
        pauli = PauliString(((0, "I"), (1, "X")))
        assert pauli.support == (1,)

    def test_invalid_letter_rejected(self):
        with pytest.raises(AnalysisError):
            PauliString(((0, "Q"),))

    def test_duplicate_qubit_rejected(self):
        with pytest.raises(AnalysisError):
            PauliString(((0, "X"), (0, "Z")))

    def test_from_label(self):
        pauli = PauliString.from_label("XIZ")
        assert pauli.letter(0) == "X"
        assert pauli.letter(1) == "I"
        assert pauli.letter(2) == "Z"

    def test_to_label_round_trip(self):
        pauli = PauliString.from_label("XYZI")
        assert pauli.to_label(4) == "XYZI"

    def test_weight(self):
        assert PauliString.from_label("XIYI").weight() == 2
        assert PauliString.identity().weight() == 0

    def test_commutes_qubit_wise(self):
        a = PauliString.from_label("XZ")
        assert a.commutes_qubit_wise(PauliString.from_label("XI"))
        assert not a.commutes_qubit_wise(PauliString.from_label("ZZ"))

    def test_operator_commutation(self):
        x0 = PauliString.from_label("X")
        z0 = PauliString.from_label("Z")
        assert not x0.commutes(z0)
        xx = PauliString.from_label("XX")
        zz = PauliString.from_label("ZZ")
        assert xx.commutes(zz)

    def test_product_xy_gives_iz(self):
        phase, result = PauliString.from_label("X") * PauliString.from_label("Y")
        assert phase == 1j
        assert result == PauliString.from_label("Z")

    def test_product_is_consistent_with_matrices(self):
        a = PauliString.from_label("XY")
        b = PauliString.from_label("ZX")
        phase, product = a * b
        expected = a.matrix(2) @ b.matrix(2)
        assert np.allclose(phase * product.matrix(2), expected)

    def test_matrix_of_z0_on_two_qubits(self):
        matrix = PauliString.from_label("Z").matrix(2)
        # Little-endian: qubit 0 is the least significant index bit.
        assert np.allclose(np.diag(matrix), [1, -1, 1, -1])

    def test_expectation_from_counts(self):
        pauli = PauliString.from_label("ZZ")
        counts = Counts({"00": 50, "11": 50})
        assert pauli.expectation_from_counts(counts) == pytest.approx(1.0)
        counts = Counts({"01": 100})
        assert pauli.expectation_from_counts(counts) == pytest.approx(-1.0)

    def test_expectation_from_empty_counts_rejected(self):
        with pytest.raises(AnalysisError):
            PauliString.from_label("Z").expectation_from_counts({})

    def test_measurement_basis_circuit(self):
        circuit = PauliString.from_label("XYZ").measurement_basis_circuit(3)
        names = [instruction.name for instruction in circuit]
        assert names == ["h", "sdg", "h"]


class TestPauliSum:
    def test_simplify_combines_terms(self):
        zz = PauliString.from_label("ZZ")
        total = PauliSum().add_term(1.0, zz).add_term(2.0, zz).simplify()
        assert len(total) == 1
        assert total.terms[0].coefficient == pytest.approx(3.0)

    def test_simplify_drops_zero(self):
        zz = PauliString.from_label("ZZ")
        total = PauliSum().add_term(1.0, zz).add_term(-1.0, zz).simplify()
        assert len(total) == 0

    def test_matrix_matches_manual_construction(self):
        total = PauliSum().add_term(0.5, PauliString.from_label("X")).add_term(
            -1.5, PauliString.from_label("Z")
        )
        x = np.array([[0, 1], [1, 0]])
        z = np.diag([1, -1])
        assert np.allclose(total.matrix(1), 0.5 * x - 1.5 * z)

    def test_expectation_from_statevector(self):
        # |+> has <X> = 1 and <Z> = 0.
        circuit = Circuit(1).h(0)
        state = final_statevector(circuit)
        x_sum = PauliSum().add_term(1.0, PauliString.from_label("X"))
        z_sum = PauliSum().add_term(1.0, PauliString.from_label("Z"))
        assert x_sum.expectation_from_statevector(state) == pytest.approx(1.0)
        assert z_sum.expectation_from_statevector(state) == pytest.approx(0.0, abs=1e-9)

    def test_scalar_multiplication(self):
        total = PauliSum().add_term(2.0, PauliString.from_label("Z"))
        scaled = 0.5 * total
        assert scaled.terms[0].coefficient == pytest.approx(1.0)

    def test_group_commuting_groups_share_basis(self):
        terms = PauliSum()
        terms.add_term(1.0, PauliString.from_label("ZZ"))
        terms.add_term(1.0, PauliString.from_label("ZI"))
        terms.add_term(1.0, PauliString.from_label("XX"))
        groups = terms.group_commuting()
        assert len(groups) == 2

    def test_measurement_circuits_cover_all_terms(self):
        terms = PauliSum()
        terms.add_term(1.0, PauliString.from_label("ZZ"))
        terms.add_term(1.0, PauliString.from_label("XX"))
        circuits = terms.measurement_circuits(2)
        assert len(circuits) == 2
        total_terms = sum(len(group) for _circuit, group in circuits)
        assert total_terms == 2

    def test_num_qubits(self):
        total = PauliSum().add_term(1.0, PauliString.from_dict({3: "X"}))
        assert total.num_qubits() == 4
        assert PauliSum().num_qubits() == 0

    def test_expectation_from_group_counts(self):
        zz = PauliString.from_label("ZZ")
        group = [PauliTerm(2.0, zz)]
        counts = Counts({"00": 10})
        total = PauliSum([PauliTerm(2.0, zz)])
        assert total.expectation_from_group_counts([(group, counts)]) == pytest.approx(2.0)


class TestPauliPropertyBased:
    letters = st.sampled_from(["I", "X", "Y", "Z"])

    @given(label_a=st.lists(letters, min_size=1, max_size=4), label_b=st.lists(letters, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_product_matches_matrix_product(self, label_a, label_b):
        size = max(len(label_a), len(label_b))
        a = PauliString.from_label("".join(label_a))
        b = PauliString.from_label("".join(label_b))
        phase, product = a * b
        assert np.allclose(
            phase * product.matrix(size), a.matrix(size) @ b.matrix(size), atol=1e-9
        )

    @given(label=st.lists(letters, min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_every_pauli_string_squares_to_identity(self, label):
        pauli = PauliString.from_label("".join(label))
        phase, product = pauli * pauli
        assert phase == 1
        assert product == PauliString.identity()
