"""Unit tests for the tracing half of the telemetry subsystem."""

import threading

import pytest

from repro.telemetry import NULL_SPAN, Tracer


class TestSpanNesting:
    def test_parent_child_links(self):
        tracer = Tracer(seed=1)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id == outer.span_id
        names = [span.name for span in tracer.finished()]
        assert names == ["inner", "outer"]  # completion order

    def test_sibling_spans_share_parent(self):
        tracer = Tracer(seed=1)
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        spans = {span.name: span for span in tracer.finished()}
        assert spans["a"].parent_id == root.span_id
        assert spans["b"].parent_id == root.span_id

    def test_emit_parents_under_current_span(self):
        tracer = Tracer(seed=1)
        with tracer.span("root") as root:
            emitted = tracer.emit("timed", 0.25, detail="x")
        assert emitted.parent_id == root.span_id
        assert emitted.duration == 0.25
        assert emitted.attributes["detail"] == "x"

    def test_exception_marks_error_status(self):
        tracer = Tracer(seed=1)
        with pytest.raises(RuntimeError):
            with tracer.span("explodes"):
                raise RuntimeError("boom")
        (span,) = tracer.finished()
        assert span.status == "error"
        assert span.attributes["error"] == "RuntimeError"

    def test_threads_have_independent_stacks(self):
        tracer = Tracer(seed=1)
        seen = {}

        def worker():
            with tracer.span("thread-root") as span:
                seen["parent"] = span.parent_id

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["parent"] is None  # no cross-thread inheritance


class TestDeterminism:
    def _run(self, tracer):
        with tracer.span("root"):
            with tracer.span("child"):
                pass
            tracer.emit("leaf", 0.1)
        return [(span.name, span.span_id, span.parent_id) for span in tracer.finished()]

    def test_fixed_seed_yields_identical_ids(self):
        first = self._run(Tracer(seed=42))
        second = self._run(Tracer(seed=42))
        assert first == second

    def test_reseed_restarts_the_counter(self):
        tracer = Tracer(seed=1)
        first = self._run(tracer)
        tracer.reseed(1)
        assert self._run(tracer) == first

    def test_id_prefix_is_applied(self):
        tracer = Tracer(seed=1, id_prefix="w9-")
        with tracer.span("x") as span:
            assert span.span_id == "w9-1"


class TestDisabledMode:
    def test_disabled_span_is_the_shared_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        with tracer.span("anything") as span:
            span.set_attribute("k", "v")  # no-op, no error
        assert tracer.finished() == []

    def test_disabled_emit_returns_none(self):
        tracer = Tracer(enabled=False)
        assert tracer.emit("x", 0.1) is None


class TestRetention:
    def test_ring_buffer_drops_oldest_and_counts(self):
        tracer = Tracer(seed=1, max_spans=3)
        for index in range(5):
            tracer.emit(f"s{index}", 0.0)
        names = [span.name for span in tracer.finished()]
        assert names == ["s2", "s3", "s4"]
        assert tracer.dropped == 2

    def test_drain_empties_the_buffer(self):
        tracer = Tracer(seed=1)
        tracer.emit("a", 0.0)
        drained = tracer.drain()
        assert [span.name for span in drained] == ["a"]
        assert tracer.finished() == []

    def test_finished_filters_by_trace_id(self):
        tracer = Tracer(seed=1)
        with tracer.span("t1"):
            pass
        with tracer.span("t2"):
            pass
        spans = tracer.finished()
        only = tracer.finished(spans[0].trace_id)
        assert [span.name for span in only] == ["t1"]


class TestAdopt:
    def test_adopt_reparents_roots_and_rewrites_trace(self):
        worker = Tracer(seed=1, id_prefix="w1-")
        with worker.span("worker.lease"):
            with worker.span("child"):
                pass
        shipped = [span.as_dict() for span in worker.drain()]

        parent = Tracer(seed=1)
        with parent.span("scheduler") as anchor:
            adopted = parent.adopt(shipped, parent=anchor)
        by_name = {span.name: span for span in adopted}
        assert by_name["worker.lease"].parent_id == anchor.span_id
        # intra-batch parent links survive verbatim
        assert by_name["child"].parent_id == by_name["worker.lease"].span_id
        assert all(span.trace_id == anchor.trace_id for span in adopted)

    def test_adopt_on_disabled_tracer_is_a_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.adopt([{"name": "x", "span_id": "1", "parent_id": None,
                              "trace_id": "1"}]) == []

    def test_reset_context_clears_inherited_stack(self):
        tracer = Tracer(seed=1)
        context = tracer.span("stale")
        context.__enter__()  # simulate a fork child inheriting an open span
        tracer.reset_context()
        with tracer.span("fresh") as span:
            assert span.parent_id is None
