"""The seven bespoke ``stats()`` dicts are now registry views.

Two invariants per component: the historical flat key set is unchanged
(callers never break), and the same numbers are simultaneously visible in
the process-wide metrics registry (so ``GET /metrics`` agrees with every
``stats()`` call).
"""

import repro.benchmarks  # noqa: F401 - registers benchmark families
from repro.circuits import Circuit
from repro.devices import get_device
from repro.execution.cache import TranspileCache
from repro.execution.results import BenchmarkRun
from repro.service.jobs import JobQueue
from repro.store import ResultStore
from repro.suite.registry import BenchmarkRegistry
from repro.telemetry import get_metrics


def _make_run():
    return BenchmarkRun(
        benchmark="ghz[3q]",
        family="ghz",
        device="IonQ-11Q",
        scores=[0.9, 0.91],
        features={"pc": 0.5},
        typical={"num_qubits": 3},
        compiled_two_qubit_gates=2,
        compiled_depth=9,
        swap_count=0,
        shots=100,
        backend="trajectory",
        placement="noise_aware",
        pipeline="abc123",
        mitigation="",
        seconds=0.5,
    )


def _series_value(snapshot, name, **labels):
    for row in snapshot.get(name, {}).get("series", []):
        if all(row["labels"].get(k) == v for k, v in labels.items()):
            return row["value"]
    return None


def _ghz(n):
    circuit = Circuit(n, n)
    circuit.h(0)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    return circuit


class TestTranspileCacheParity:
    def test_keys_and_registry_agree(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        cache.get_or_transpile(_ghz(3), device)
        cache.get_or_transpile(_ghz(3), device)
        stats = cache.stats()
        assert set(stats) == {"hits", "misses", "entries"}
        assert stats == {"hits": 1, "misses": 1, "entries": 1}
        snapshot = get_metrics().snapshot()
        instance = cache._id
        assert _series_value(
            snapshot, "repro_transpile_cache_lookups_total",
            instance=instance, result="hit",
        ) == 1
        assert _series_value(
            snapshot, "repro_transpile_cache_lookups_total",
            instance=instance, result="miss",
        ) == 1
        assert _series_value(
            snapshot, "repro_transpile_cache_entries", instance=instance,
        ) == 1

    def test_clear_resets_stats_but_registry_counters_stay_monotonic(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        cache.get_or_transpile(_ghz(3), device)
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}
        # the registry series keeps the pre-clear traffic
        assert _series_value(
            get_metrics().snapshot(), "repro_transpile_cache_lookups_total",
            instance=cache._id, result="miss",
        ) == 1


class TestResultStoreParity:
    def test_keys_and_registry_agree(self):
        with ResultStore() as store:
            store.put_run("k1", _make_run())
            store.get_run("k1")
            store.get_run("absent")
            stats = store.stats()
            assert set(stats) == {"hits", "misses", "puts", "evictions", "rows"}
            snapshot = get_metrics().snapshot()
            instance = store._id
            lookups = "repro_store_lookups_total"
            assert _series_value(snapshot, lookups, instance=instance, result="hit") == 1
            assert _series_value(snapshot, lookups, instance=instance, result="miss") == 1
            assert _series_value(
                snapshot, "repro_store_puts_total", instance=instance) == 1
            assert _series_value(
                snapshot, "repro_store_rows", instance=instance) == 1
            # query latency histogram recorded the two gets
            series = snapshot["repro_store_op_seconds"]["series"]
            gets = [row for row in series
                    if row["labels"].get("instance") == instance
                    and row["labels"].get("op") == "get"]
            assert gets and gets[0]["count"] == 2


class TestRegistryParity:
    def test_keys_and_gauge_rows_agree(self):
        registry = BenchmarkRegistry()

        @registry.register("parity-fam")
        class _Fam:  # noqa: N801 - minimal stand-in
            name = "parity-fam"

        stats = registry.stats()
        assert set(stats) == {"families", "instances"}
        assert stats["families"] == 1
        snapshot = get_metrics().snapshot()
        assert _series_value(
            snapshot, "repro_registry_entries",
            instance=registry._id, kind="families",
        ) == 1
        assert _series_value(
            snapshot, "repro_registry_entries",
            instance=registry._id, kind="instances",
        ) == 0


class TestJobQueueParity:
    def test_keys_and_gauge_rows_agree(self):
        def instant_runner(scenario, **kwargs):
            from repro.suite.results import SuiteResult

            return SuiteResult(scenario=scenario.name)

        from repro.suite import Scenario, Sweep

        scenario = Scenario(
            name="parity",
            sweeps=(Sweep.of("ghz", num_qubits=(2,)),),
            devices=("IonQ-11Q",),
        )
        with JobQueue(workers=1, runner=instant_runner) as queue:
            job_id = queue.submit(scenario)
            queue.result(job_id, timeout=30)
            stats = queue.stats()
            assert set(stats) == {
                "jobs", "queued", "running", "done", "failed",
                "cancelled", "retries", "workers",
            }
            assert stats["done"] == 1
            snapshot = get_metrics().snapshot()
            assert _series_value(
                snapshot, "repro_service_jobs",
                instance=queue._id, status="done",
            ) == 1
            # terminal duration observed under the terminal status
            series = snapshot["repro_service_job_seconds"]["series"]
            done = [row for row in series
                    if row["labels"].get("instance") == queue._id
                    and row["labels"].get("status") == "done"]
            assert done and done[0]["count"] == 1


class TestEngineParity:
    def test_flat_key_set_is_unchanged(self):
        from repro.execution import ExecutionEngine

        engine = ExecutionEngine(get_device("IonQ-11Q"), trajectories=5)
        stats = engine.stats()
        assert set(stats) == {
            "hits", "misses", "entries",
            "calibration_hits", "calibration_misses", "calibration_entries",
            "store_hits", "store_misses", "executions",
        }
        assert all(isinstance(value, int) for value in stats.values())
