"""Unit tests for the metrics half of the telemetry subsystem."""

import threading

import pytest

from repro.telemetry import diff_snapshots, get_metrics, instance_label
from repro.telemetry.metrics import MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "Events.")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)

    def test_labeled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("lookups_total", "Lookups.", ("result",))
        hits = counter.labels(result="hit")
        misses = counter.labels(result="miss")
        hits.add(3.0)
        misses.add(1.0)
        assert hits.value() == 3.0
        assert misses.value() == 1.0

    def test_idempotent_registration_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "C.")
        second = registry.counter("c_total", "C.")
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "X.")
        with pytest.raises(Exception):
            registry.gauge("x_total", "X.")

    def test_threaded_increments_are_lossless(self):
        registry = MetricsRegistry()
        counter = registry.counter("hot_total", "Hot path.")
        series = counter.labels()

        def hammer():
            for _ in range(10_000):
                series.add(1.0)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 40_000


class TestGauge:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "Depth.")
        gauge.set(5.0)
        gauge.add(2.0)
        assert gauge.value() == 7.0

    def test_callback_tracks_live_object(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("entries", "Entries.", ("instance",))
        items = ["a", "b"]
        gauge.set_callback(items.__len__, instance="i1")
        rows = {tuple(sorted(r["labels"].items())): r["value"] for r in gauge.collect()}
        assert rows[(("instance", "i1"),)] == 2
        items.append("c")
        rows = {tuple(sorted(r["labels"].items())): r["value"] for r in gauge.collect()}
        assert rows[(("instance", "i1"),)] == 3

    def test_collector_yields_multiple_series(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("occupancy", "Occupancy.", ("instance", "kind"))

        class Holder:
            def rows(self):
                return {("h1", "families"): 4, ("h1", "instances"): 9}

        holder = Holder()
        gauge.add_collector(holder.rows)
        rows = {tuple(r["labels"].values()): r["value"] for r in gauge.collect()}
        assert rows[("h1", "families")] == 4
        assert rows[("h1", "instances")] == 9

    def test_dead_callback_is_pruned_not_raised(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("entries", "Entries.", ("instance",))

        class Transient:
            def size(self):
                return 1

        obj = Transient()
        gauge.set_callback(obj.size, instance="gone")
        del obj
        assert all(row["labels"].get("instance") != "gone" for row in gauge.collect())


class TestHistogram:
    def test_observe_buckets_and_sum(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds", "Latency.", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        (row,) = histogram.collect()
        # per-bucket (non-cumulative) counts plus one overflow bucket
        assert row["counts"] == [1, 1, 1]
        assert row["count"] == 3
        assert row["sum"] == pytest.approx(5.55)

    def test_labeled_handles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("op_seconds", "Ops.", ("op",), buckets=(1.0,))
        histogram.labels(op="get").observe(0.2)
        histogram.labels(op="put").observe(0.3)
        rows = {row["labels"]["op"]: row for row in histogram.collect()}
        assert rows["get"]["count"] == 1
        assert rows["put"]["count"] == 1


class TestSnapshotMergeDiff:
    def _simple(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "C.").inc(2.0)
        registry.gauge("g", "G.").set(5.0)
        hist = registry.histogram("h_seconds", "H.", buckets=(1.0,))
        hist.observe(0.5)
        return registry

    def test_snapshot_shape(self):
        snap = self._simple().snapshot()
        assert snap["c_total"]["type"] == "counter"
        assert snap["g"]["type"] == "gauge"
        assert snap["h_seconds"]["type"] == "histogram"
        assert snap["c_total"]["series"][0]["value"] == 2.0

    def test_merge_counter_sums_gauge_maxes_histogram_adds(self):
        ours = self._simple()
        theirs = self._simple().snapshot()
        ours.merge_snapshot(theirs)
        merged = ours.snapshot()
        assert merged["c_total"]["series"][0]["value"] == 4.0
        assert merged["g"]["series"][0]["value"] == 5.0  # max, not sum
        assert merged["h_seconds"]["series"][0]["count"] == 2

    def test_diff_reports_only_the_delta(self):
        registry = self._simple()
        before = registry.snapshot()
        registry.counter("c_total", "C.").inc(3.0)
        delta = diff_snapshots(registry.snapshot(), before)
        assert delta["c_total"]["series"][0]["value"] == 3.0
        # untouched histogram series vanish from the delta entirely
        assert "h_seconds" not in delta

    def test_diff_keeps_gauge_after_value(self):
        registry = self._simple()
        before = registry.snapshot()
        registry.gauge("g", "G.").set(9.0)
        delta = diff_snapshots(registry.snapshot(), before)
        assert delta["g"]["series"][0]["value"] == 9.0


class TestInstanceLabel:
    def test_labels_are_unique_per_prefix(self):
        a = instance_label("t")
        b = instance_label("t")
        assert a != b
        assert a.startswith("t") and b.startswith("t")

    def test_default_registry_is_process_wide(self):
        assert get_metrics() is get_metrics()
