"""Exporter tests: Prometheus text grammar, NDJSON, Chrome trace JSON."""

import json
import re

from repro.telemetry import Tracer
from repro.telemetry.export import (
    spans_to_chrome_trace,
    spans_to_ndjson,
    to_json,
    to_prometheus,
)
from repro.telemetry.metrics import MetricsRegistry

#: One sample line: metric name + optional {labels} + space + number.
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? "
    r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|NaN)$"
)


def _registry():
    registry = MetricsRegistry()
    registry.counter("repro_events_total", "Events.", ("kind",)).inc(3, kind="run")
    registry.gauge("repro_entries", "Entries.").set(7)
    hist = registry.histogram("repro_op_seconds", "Ops.", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(2.0)
    return registry


class TestPrometheus:
    def test_every_sample_line_matches_the_grammar(self):
        text = to_prometheus(_registry().snapshot())
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) ", line), line
            else:
                assert _SAMPLE.match(line), line

    def test_counter_and_gauge_values(self):
        text = to_prometheus(_registry().snapshot())
        assert 'repro_events_total{kind="run"} 3' in text
        assert "repro_entries 7" in text
        assert "# TYPE repro_events_total counter" in text
        assert "# TYPE repro_entries gauge" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = to_prometheus(_registry().snapshot())
        assert 'repro_op_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_op_seconds_bucket{le="1"} 2' in text
        assert 'repro_op_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_op_seconds_count 3" in text
        assert "repro_op_seconds_sum 2.55" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", ("k",)).inc(1, k='we"ird\nvalue')
        text = to_prometheus(registry.snapshot())
        assert 'k="we\\"ird\\nvalue"' in text

    def test_never_written_prebound_series_renders_integer_zero(self):
        registry = MetricsRegistry()
        registry.counter("cold_total", "", ("r",)).labels(r="hit")
        assert "cold_total{r=\"hit\"} 0\n" in to_prometheus(registry.snapshot())


class TestJsonAndNdjson:
    def test_to_json_round_trips(self):
        snapshot = _registry().snapshot()
        assert json.loads(to_json(snapshot)) == json.loads(json.dumps(snapshot))

    def test_ndjson_one_object_per_line(self):
        tracer = Tracer(seed=1)
        tracer.emit("a", 0.1)
        tracer.emit("b", 0.2)
        lines = spans_to_ndjson(tracer.finished()).splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_ndjson_accepts_plain_dicts(self):
        payload = [{"name": "x", "span_id": "1", "parent_id": None, "trace_id": "1"}]
        assert json.loads(spans_to_ndjson(payload).strip())["name"] == "x"


class TestChromeTrace:
    def _spans(self):
        tracer = Tracer(seed=1)
        with tracer.span("engine.run", device="d"):
            tracer.emit("transpiler.pass", 0.01, pass_name="p")
        return tracer.finished()

    def test_complete_events_with_relative_microseconds(self):
        doc = spans_to_chrome_trace(self._spans())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in events} == {"engine.run", "transpiler.pass"}
        assert min(e["ts"] for e in events) == 0.0
        assert all(e["dur"] >= 0 for e in events)

    def test_process_and_thread_metadata_rows(self):
        doc = spans_to_chrome_trace(self._spans())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}

    def test_span_identity_lands_in_args(self):
        doc = spans_to_chrome_trace(self._spans())
        child = next(e for e in doc["traceEvents"] if e.get("name") == "transpiler.pass")
        assert "span_id" in child["args"]
        assert "parent_id" in child["args"]

    def test_document_is_json_serialisable(self):
        json.dumps(spans_to_chrome_trace(self._spans()))


class TestTranspilerPathLabel:
    """The pass-latency histogram separates packed and object executions."""

    def _run_both_paths(self):
        from repro.circuits import Circuit
        from repro.telemetry import get_metrics
        from repro.transpiler import DropNegligible, PassManager

        circuit = Circuit(2, name="label").rz(0.5, 0).rz(1e-14, 1)
        PassManager([DropNegligible()], use_packed=True).run(circuit)
        PassManager([DropNegligible()], use_packed=False).run(circuit)
        return to_prometheus(get_metrics().snapshot())

    def test_histogram_carries_one_series_per_path(self):
        text = self._run_both_paths()
        lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_transpiler_pass_seconds_count")
        ]
        packed = [line for line in lines if 'path="packed"' in line]
        object_walk = [line for line in lines if 'path="object"' in line]
        assert packed, "no packed-path series exported"
        assert object_walk, "no object-path series exported"
        assert all('pass_name="' in line for line in packed + object_walk)

    def test_path_labelled_samples_match_the_grammar(self):
        text = self._run_both_paths()
        for line in text.splitlines():
            if "repro_transpiler_pass_seconds" not in line or line.startswith("#"):
                continue
            assert _SAMPLE.match(line), line
