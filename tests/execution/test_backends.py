"""Backend protocol tests: resolution, determinism and cross-backend parity."""

import pytest

from repro.benchmarks import GHZBenchmark, HamiltonianSimulationBenchmark, VanillaQAOABenchmark
from repro.devices import get_device
from repro.exceptions import SimulationError
from repro.execution import (
    Backend,
    DensityMatrixBackend,
    ExecutionEngine,
    StatevectorBackend,
    TrajectoryBackend,
    resolve_backend,
)

DEVICE = "IBM-Casablanca-7Q"


class TestResolveBackend:
    def test_names_and_aliases(self):
        assert isinstance(resolve_backend("statevector"), StatevectorBackend)
        assert isinstance(resolve_backend("ideal"), StatevectorBackend)
        assert isinstance(resolve_backend("trajectory"), TrajectoryBackend)
        assert isinstance(resolve_backend("noisy"), TrajectoryBackend)
        assert isinstance(resolve_backend("density_matrix"), DensityMatrixBackend)
        assert isinstance(resolve_backend("dm"), DensityMatrixBackend)

    def test_default_is_noisy_trajectory(self):
        backend = resolve_backend(None, trajectories=17)
        assert isinstance(backend, TrajectoryBackend)
        assert backend.trajectories == 17

    def test_instance_passthrough(self):
        backend = TrajectoryBackend(trajectories=5)
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(SimulationError):
            resolve_backend("quantum-annealer")

    def test_protocol_is_runtime_checkable(self):
        assert isinstance(StatevectorBackend(), Backend)
        assert isinstance(DensityMatrixBackend(), Backend)


class TestSeedSemantics:
    def test_same_seed_same_counts(self):
        circuit = GHZBenchmark(3).circuits()[0]
        backend = StatevectorBackend()
        first = backend.run_batch([circuit], 200, seed=5)
        second = backend.run_batch([circuit], 200, seed=5)
        assert [dict(c) for c in first] == [dict(c) for c in second]

    def test_batch_split_is_equivalent_to_serial(self):
        """Per-circuit seeds depend only on batch seed and position."""
        circuits = [GHZBenchmark(n).circuits()[0] for n in (3, 4, 5)]
        backend = StatevectorBackend()
        whole = backend.run_batch(circuits, 150, seed=9)
        split = [
            backend.run_batch([circuit], 150, seed=9 + 7919 * index)[0]
            for index, circuit in enumerate(circuits)
        ]
        assert [dict(c) for c in whole] == [dict(c) for c in split]


class TestWorkerCountDeterminism:
    @pytest.mark.parametrize(
        "backend_factory",
        [StatevectorBackend, lambda: TrajectoryBackend(trajectories=10)],
        ids=["statevector", "trajectory"],
    )
    def test_counts_identical_for_1_and_4_workers(self, backend_factory):
        device = get_device(DEVICE)
        circuits = [GHZBenchmark(n).circuits()[0] for n in (3, 4, 5)]
        results = {}
        for workers in (1, 4):
            with ExecutionEngine(device, backend=backend_factory(), max_workers=workers) as engine:
                results[workers] = engine.run_circuits(circuits, shots=120, seed=42)
        assert [dict(a) for a in results[1]] == [dict(b) for b in results[4]]

    def test_benchmark_scores_identical_for_1_and_4_workers(self):
        device = get_device(DEVICE)
        scores = {}
        for workers in (1, 4):
            with ExecutionEngine(device, backend="statevector", max_workers=workers) as engine:
                scores[workers] = engine.run(
                    GHZBenchmark(4), shots=150, repetitions=3, seed=2022
                ).scores
        assert scores[1] == scores[4]


class TestBackendParity:
    """Exact density-matrix and high-trajectory Monte-Carlo must agree."""

    @pytest.mark.parametrize(
        "bench",
        [
            GHZBenchmark(3),
            VanillaQAOABenchmark(4, seed=0),
            HamiltonianSimulationBenchmark(4, steps=1),
        ],
        ids=["ghz3", "qaoa4", "hamsim4"],
    )
    def test_trajectory_converges_to_density_matrix(self, bench):
        device = get_device(DEVICE)
        shots = 600
        with ExecutionEngine(device, backend=DensityMatrixBackend()) as engine:
            exact = engine.run(bench, shots=shots, repetitions=1, seed=99).mean_score
        # trajectories=None spreads one trajectory per shot: unbiased Monte-Carlo.
        with ExecutionEngine(device, backend=TrajectoryBackend(trajectories=None)) as engine:
            sampled = engine.run(bench, shots=shots, repetitions=1, seed=99).mean_score
        assert sampled == pytest.approx(exact, abs=0.08)
