"""Tests for circuit fingerprinting and the transpile cache."""

import pytest

from repro.circuits import Circuit
from repro.devices import get_device
from repro.execution import TranspileCache, circuit_fingerprint


def _ghz(n: int, name: str = "") -> Circuit:
    circuit = Circuit(n, n, name)
    circuit.h(0)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    return circuit.measure_all()


class TestFingerprint:
    def test_equal_circuits_share_fingerprint(self):
        assert circuit_fingerprint(_ghz(3)) == circuit_fingerprint(_ghz(3))

    def test_name_does_not_affect_fingerprint(self):
        assert circuit_fingerprint(_ghz(3, "a")) == circuit_fingerprint(_ghz(3, "b"))

    def test_structure_changes_fingerprint(self):
        assert circuit_fingerprint(_ghz(3)) != circuit_fingerprint(_ghz(4))
        base = Circuit(2).rx(0.5, 0).measure_all()
        other = Circuit(2).rx(0.6, 0).measure_all()
        assert circuit_fingerprint(base) != circuit_fingerprint(other)

    def test_operand_order_changes_fingerprint(self):
        a = Circuit(2).cx(0, 1).measure_all()
        b = Circuit(2).cx(1, 0).measure_all()
        assert circuit_fingerprint(a) != circuit_fingerprint(b)


class TestTranspileCache:
    def test_second_lookup_is_a_hit(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        first = cache.get_or_transpile(_ghz(3), device)
        second = cache.get_or_transpile(_ghz(3), device)
        assert first is second
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_structurally_equal_objects_hit(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        entry_a = cache.get_or_transpile(_ghz(3, "x"), device)
        entry_b = cache.get_or_transpile(_ghz(3, "y"), device)
        assert entry_a is entry_b

    def test_optimization_level_is_part_of_the_key(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        cache.get_or_transpile(_ghz(3), device, optimization_level=0)
        cache.get_or_transpile(_ghz(3), device, optimization_level=2)
        assert cache.stats()["misses"] == 2
        assert len(cache) == 2

    def test_different_devices_do_not_collide(self):
        cache = TranspileCache()
        cache.get_or_transpile(_ghz(3), get_device("IBM-Casablanca-7Q"))
        cache.get_or_transpile(_ghz(3), get_device("IonQ-11Q"))
        assert cache.stats() == {"hits": 0, "misses": 2, "entries": 2}

    def test_entry_contents(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        entry = cache.get_or_transpile(_ghz(3), device)
        assert entry.compact.num_qubits == len(entry.physical)
        assert entry.transpiled.device is device
        # The noise model is built lazily and memoised.
        model = entry.noise_model()
        assert entry.noise_model() is model

    def test_clear_resets_counters(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        cache.get_or_transpile(_ghz(3), device)
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}


class TestPipelineAwareKeys:
    """Regression tests: the key folds in the full pipeline fingerprint.

    The historical cache keyed on ``(fingerprint, device, optimization_level)``
    only, so two calls differing in placement strategy (or initial layout)
    silently shared one entry — the second caller got a circuit compiled with
    the wrong placement.
    """

    def test_placement_is_part_of_the_key(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        noise_aware = cache.get_or_transpile(_ghz(3), device, placement="noise_aware")
        trivial = cache.get_or_transpile(_ghz(3), device, placement="trivial")
        assert cache.stats() == {"hits": 0, "misses": 2, "entries": 2}
        assert noise_aware is not trivial
        assert trivial.transpiled.initial_layout == {0: 0, 1: 1, 2: 2}
        # The noise-aware heuristic picks a high-connectivity region, which on
        # Casablanca differs from the identity layout.
        assert noise_aware.transpiled.initial_layout != trivial.transpiled.initial_layout

    def test_initial_layout_is_part_of_the_key(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        entry_a = cache.get_or_transpile(_ghz(2), device, initial_layout={0: 1, 1: 3})
        entry_b = cache.get_or_transpile(_ghz(2), device, initial_layout={0: 3, 1: 5})
        default = cache.get_or_transpile(_ghz(2), device)
        assert cache.stats()["misses"] == 3
        assert entry_a.transpiled.initial_layout == {0: 1, 1: 3}
        assert entry_b.transpiled.initial_layout == {0: 3, 1: 5}
        assert default is not entry_a and default is not entry_b

    def test_same_pipeline_still_hits(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        first = cache.get_or_transpile(_ghz(3), device, placement="trivial")
        second = cache.get_or_transpile(_ghz(3), device, placement="trivial")
        assert first is second
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_entry_records_pipeline_fingerprint(self):
        from repro.transpiler import preset_pipeline

        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        entry = cache.get_or_transpile(_ghz(3), device, optimization_level=2)
        assert entry.pipeline == preset_pipeline(device, optimization_level=2).fingerprint
        assert entry.transpiled.pipeline_fingerprint == entry.pipeline
