"""Tests for circuit fingerprinting and the transpile cache."""

import pytest

from repro.circuits import Circuit
from repro.devices import get_device
from repro.execution import TranspileCache, circuit_fingerprint


def _ghz(n: int, name: str = "") -> Circuit:
    circuit = Circuit(n, n, name)
    circuit.h(0)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    return circuit.measure_all()


class TestFingerprint:
    def test_equal_circuits_share_fingerprint(self):
        assert circuit_fingerprint(_ghz(3)) == circuit_fingerprint(_ghz(3))

    def test_name_does_not_affect_fingerprint(self):
        assert circuit_fingerprint(_ghz(3, "a")) == circuit_fingerprint(_ghz(3, "b"))

    def test_structure_changes_fingerprint(self):
        assert circuit_fingerprint(_ghz(3)) != circuit_fingerprint(_ghz(4))
        base = Circuit(2).rx(0.5, 0).measure_all()
        other = Circuit(2).rx(0.6, 0).measure_all()
        assert circuit_fingerprint(base) != circuit_fingerprint(other)

    def test_operand_order_changes_fingerprint(self):
        a = Circuit(2).cx(0, 1).measure_all()
        b = Circuit(2).cx(1, 0).measure_all()
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_params_hash_as_raw_float_bytes(self):
        # The v2 fingerprint hashes the raw float64 bytes, not a repr() string:
        # 0.1 + 0.2 and the literal 0.30000000000000004 are the same float and
        # must hash equal, while the (different) float 0.3 must not — even
        # though a "%.5f"-style textual scheme would conflate all three.
        computed = Circuit(1).rx(0.1 + 0.2, 0)
        literal = Circuit(1).rx(0.30000000000000004, 0)
        rounded = Circuit(1).rx(0.3, 0)
        assert circuit_fingerprint(computed) == circuit_fingerprint(literal)
        assert circuit_fingerprint(computed) != circuit_fingerprint(rounded)

    def test_sign_of_zero_is_structural(self):
        # -0.0 == 0.0 compares equal but has different bytes; the byte-level
        # scheme keeps them distinct (repr-level schemes did too).
        assert circuit_fingerprint(Circuit(1).rz(0.0, 0)) != circuit_fingerprint(
            Circuit(1).rz(-0.0, 0)
        )

    def test_clbit_wiring_changes_fingerprint(self):
        a = Circuit(2, 2).h(0).measure(0, 0)
        b = Circuit(2, 2).h(0).measure(0, 1)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_pack_round_trip_preserves_fingerprint(self):
        circuit = _ghz(4).rx(0.1 + 0.2, 0).barrier(1, 3)
        assert circuit_fingerprint(circuit.packed().unpack()) == circuit_fingerprint(circuit)


class TestTranspileCache:
    def test_second_lookup_is_a_hit(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        first = cache.get_or_transpile(_ghz(3), device)
        second = cache.get_or_transpile(_ghz(3), device)
        assert first is second
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_structurally_equal_objects_hit(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        entry_a = cache.get_or_transpile(_ghz(3, "x"), device)
        entry_b = cache.get_or_transpile(_ghz(3, "y"), device)
        assert entry_a is entry_b

    def test_optimization_level_is_part_of_the_key(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        cache.get_or_transpile(_ghz(3), device, optimization_level=0)
        cache.get_or_transpile(_ghz(3), device, optimization_level=2)
        assert cache.stats()["misses"] == 2
        assert len(cache) == 2

    def test_different_devices_do_not_collide(self):
        cache = TranspileCache()
        cache.get_or_transpile(_ghz(3), get_device("IBM-Casablanca-7Q"))
        cache.get_or_transpile(_ghz(3), get_device("IonQ-11Q"))
        assert cache.stats() == {"hits": 0, "misses": 2, "entries": 2}

    def test_entry_contents(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        entry = cache.get_or_transpile(_ghz(3), device)
        assert entry.compact.num_qubits == len(entry.physical)
        assert entry.transpiled.device is device
        # The noise model is built lazily and memoised.
        model = entry.noise_model()
        assert entry.noise_model() is model

    def test_clear_resets_counters(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        cache.get_or_transpile(_ghz(3), device)
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}


class TestPipelineAwareKeys:
    """Regression tests: the key folds in the full pipeline fingerprint.

    The historical cache keyed on ``(fingerprint, device, optimization_level)``
    only, so two calls differing in placement strategy (or initial layout)
    silently shared one entry — the second caller got a circuit compiled with
    the wrong placement.
    """

    def test_placement_is_part_of_the_key(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        noise_aware = cache.get_or_transpile(_ghz(3), device, placement="noise_aware")
        trivial = cache.get_or_transpile(_ghz(3), device, placement="trivial")
        assert cache.stats() == {"hits": 0, "misses": 2, "entries": 2}
        assert noise_aware is not trivial
        assert trivial.transpiled.initial_layout == {0: 0, 1: 1, 2: 2}
        # The noise-aware heuristic picks a high-connectivity region, which on
        # Casablanca differs from the identity layout.
        assert noise_aware.transpiled.initial_layout != trivial.transpiled.initial_layout

    def test_initial_layout_is_part_of_the_key(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        entry_a = cache.get_or_transpile(_ghz(2), device, initial_layout={0: 1, 1: 3})
        entry_b = cache.get_or_transpile(_ghz(2), device, initial_layout={0: 3, 1: 5})
        default = cache.get_or_transpile(_ghz(2), device)
        assert cache.stats()["misses"] == 3
        assert entry_a.transpiled.initial_layout == {0: 1, 1: 3}
        assert entry_b.transpiled.initial_layout == {0: 3, 1: 5}
        assert default is not entry_a and default is not entry_b

    def test_same_pipeline_still_hits(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        first = cache.get_or_transpile(_ghz(3), device, placement="trivial")
        second = cache.get_or_transpile(_ghz(3), device, placement="trivial")
        assert first is second
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_entry_records_pipeline_fingerprint(self):
        from repro.transpiler import preset_pipeline

        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        entry = cache.get_or_transpile(_ghz(3), device, optimization_level=2)
        assert entry.pipeline == preset_pipeline(device, optimization_level=2).fingerprint
        assert entry.transpiled.pipeline_fingerprint == entry.pipeline


class TestBatchApi:
    def test_batch_dedups_before_counting(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        entries = cache.get_or_transpile_many([_ghz(3)] * 5, device)
        assert len(entries) == 5
        assert all(entry is entries[0] for entry in entries)
        # five structural duplicates: one miss, zero hits, one compile
        assert cache.stats() == {"hits": 0, "misses": 1, "entries": 1}

    def test_batch_mixes_hits_and_misses(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        warm = cache.get_or_transpile(_ghz(3), device)
        entries = cache.get_or_transpile_many([_ghz(3), _ghz(4), _ghz(4)], device)
        assert entries[0] is warm
        assert entries[1] is entries[2]
        assert cache.stats() == {"hits": 1, "misses": 2, "entries": 2}

    def test_batch_matches_single_lookups(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        circuits = [_ghz(3), _ghz(4), _ghz(5)]
        batch = cache.get_or_transpile_many(circuits, device)
        singles = [cache.get_or_transpile(c, device) for c in circuits]
        assert all(a is b for a, b in zip(batch, singles))

    def test_batch_compiles_through_executor(self):
        from concurrent.futures import ThreadPoolExecutor

        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        with ThreadPoolExecutor(max_workers=2) as pool:
            entries = cache.get_or_transpile_many(
                [_ghz(3), _ghz(4), _ghz(3)], device, executor=pool
            )
        assert entries[0] is entries[2]
        assert cache.stats()["entries"] == 2

    def test_batch_respects_pipeline_keys(self):
        cache = TranspileCache()
        device = get_device("IBM-Casablanca-7Q")
        level1 = cache.get_or_transpile_many([_ghz(3)], device, optimization_level=1)
        level2 = cache.get_or_transpile_many([_ghz(3)], device, optimization_level=2)
        assert level1[0] is not level2[0]
        assert cache.stats()["entries"] == 2


class TestTranspileMany:
    def test_shares_compilation_across_duplicates(self):
        from unittest import mock

        import importlib

        from repro.transpiler import transpile_many

        transpile_module = importlib.import_module("repro.transpiler.transpile")

        device = get_device("IBM-Casablanca-7Q")
        real = transpile_module.transpile
        with mock.patch.object(
            transpile_module, "transpile", side_effect=real
        ) as spy:
            results = transpile_many([_ghz(3), _ghz(3), _ghz(4)], device)
        assert spy.call_count == 2  # two distinct structures
        assert results[0] is results[1]
        assert results[0] is not results[2]

    def test_results_parallel_inputs_and_share_pipeline(self):
        from repro.transpiler import transpile, transpile_many

        device = get_device("IBM-Casablanca-7Q")
        circuits = [_ghz(3), _ghz(4)]
        batch = transpile_many(circuits, device, optimization_level=2)
        singles = [transpile(c, device, optimization_level=2) for c in circuits]
        for fast, slow in zip(batch, singles):
            assert [
                (i.gate.name, i.gate.params, i.qubits) for i in fast.circuit
            ] == [(i.gate.name, i.gate.params, i.qubits) for i in slow.circuit]
            assert fast.pipeline_fingerprint == slow.pipeline_fingerprint
