"""Engine integration of the mitigation subsystem.

Covers the ISSUE acceptance criteria: on the seeded noisy testbed, readout
mitigation and ZNE each improve Hellinger fidelity vs the ideal distribution
over raw execution for the GHZ and QAOA benchmarks, and repeated
``engine.run(..., mitigation=...)`` calls issue exactly one calibration job
per (device, qubit set, noise fingerprint) — verified by cache-stat
assertions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import hellinger_fidelity
from repro.benchmarks import GHZBenchmark, VanillaQAOABenchmark
from repro.execution import ExecutionEngine
from repro.mitigation import CalibrationCache, ReadoutMitigator, ZNEMitigator, resolve_mitigator
from repro.simulation import QuasiDistribution, final_statevector, probabilities_from_statevector


def ideal_distribution(circuit):
    """Noiseless output distribution of a terminally measured logical circuit."""
    body = [i for i in circuit if i.is_unitary()]
    from repro.circuits import Circuit

    unitary_part = Circuit(circuit.num_qubits).extend(body)
    probabilities = probabilities_from_statevector(final_statevector(unitary_part))
    n = circuit.num_qubits
    return {
        format(i, f"0{n}b")[::-1]: float(p)
        for i, p in enumerate(probabilities)
        if p > 1e-12
    }


@pytest.fixture
def engine(ibm_device):
    with ExecutionEngine(ibm_device, backend="density_matrix", max_workers=2) as engine:
        yield engine


class TestMitigatedScores:
    @pytest.mark.parametrize("benchmark_factory", [
        lambda: GHZBenchmark(4),
        lambda: VanillaQAOABenchmark(4, seed=1),
    ])
    @pytest.mark.parametrize("technique", ["readout", "zne"])
    def test_mitigation_improves_hellinger_fidelity(self, engine, benchmark_factory, technique):
        """Readout mitigation and ZNE each beat raw execution at fixed seed."""
        benchmark = benchmark_factory()
        circuit = benchmark.circuits()[0]
        ideal = ideal_distribution(circuit)
        raw = engine.run_circuits([circuit], shots=4096, seed=9)[0]
        mitigated = engine.run_circuits([circuit], shots=4096, seed=9, mitigation=technique)[0]
        assert isinstance(mitigated, QuasiDistribution)
        assert hellinger_fidelity(mitigated, ideal) > hellinger_fidelity(raw, ideal)

    def test_mitigated_benchmark_score_improves(self, engine):
        benchmark = GHZBenchmark(4)
        raw = engine.run(benchmark, shots=4096, repetitions=2, seed=7)
        mitigated = engine.run(benchmark, shots=4096, repetitions=2, seed=7, mitigation="readout")
        assert mitigated.mean_score > raw.mean_score
        assert mitigated.mitigation == "readout"
        assert raw.mitigation == ""


class TestCalibrationCaching:
    def test_exactly_one_calibration_job_per_key(self, engine):
        """Repeated mitigated runs reuse the cached calibration."""
        benchmark = GHZBenchmark(4)
        for _ in range(3):
            engine.run(benchmark, shots=512, repetitions=2, seed=7, mitigation="readout")
        stats = engine.stats()
        assert stats["calibration_misses"] == 1
        assert stats["calibration_entries"] == 1
        assert stats["calibration_hits"] == 2

    def test_distinct_qubit_sets_calibrate_separately(self, engine):
        engine.run(GHZBenchmark(3), shots=512, repetitions=1, seed=7, mitigation="readout")
        engine.run(GHZBenchmark(4), shots=512, repetitions=1, seed=7, mitigation="readout")
        stats = engine.stats()
        assert stats["calibration_misses"] == 2
        assert stats["calibration_entries"] == 2

    def test_calibration_key_shared_across_corrections(self, engine):
        """'inverse' and 'least_squares' differ only post-hoc: one calibration."""
        benchmark = GHZBenchmark(3)
        engine.run(benchmark, shots=512, repetitions=1, seed=7,
                   mitigation=ReadoutMitigator(correction="least_squares"))
        engine.run(benchmark, shots=512, repetitions=1, seed=7,
                   mitigation=ReadoutMitigator(correction="inverse"))
        assert engine.stats()["calibration_misses"] == 1

    def test_zne_needs_no_calibration(self, engine):
        engine.run(GHZBenchmark(3), shots=512, repetitions=1, seed=7, mitigation="zne")
        stats = engine.stats()
        assert stats["calibration_misses"] == 0
        assert stats["calibration_entries"] == 0

    def test_shared_cache_across_engines(self, ibm_device):
        shared = CalibrationCache()
        benchmark = GHZBenchmark(3)
        for _ in range(2):
            with ExecutionEngine(
                ibm_device, backend="density_matrix", calibration_cache=shared
            ) as engine:
                engine.run(benchmark, shots=512, repetitions=1, seed=7, mitigation="readout")
        assert shared.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_cache_stores_none_results(self):
        """Presence is tested by key: a None calibration still computes once."""
        cache = CalibrationCache()
        calls = []

        def compute():
            calls.append(1)
            return None

        key = ("device", (0, 1), "fingerprint", "technique")
        for _ in range(3):
            assert cache.get_or_compute(key, compute) is None
        assert len(calls) == 1
        assert cache.stats() == {"hits": 2, "misses": 1, "entries": 1}

    def test_calibration_is_deterministic(self, ibm_device):
        """A cleared cache re-issues the identical calibration job."""
        results = []
        for _ in range(2):
            with ExecutionEngine(ibm_device, backend="density_matrix") as engine:
                engine.run(GHZBenchmark(3), shots=512, repetitions=1, seed=7,
                           mitigation="readout")
                key = next(iter(engine.calibration_cache._entries))
                results.append(engine.calibration_cache.peek(key).matrices)
        assert np.allclose(results[0], results[1])


class TestEngineApi:
    def test_constructor_accepts_raw_spec(self, ibm_device):
        """Technique sweeps pass 'raw' as an engine default, like run() does."""
        with ExecutionEngine(ibm_device, backend="density_matrix", mitigation="raw") as engine:
            assert engine.mitigation is None
            counts = engine.run_circuits([GHZBenchmark(3).circuits()[0]], shots=128, seed=1)
            assert not isinstance(counts[0], QuasiDistribution)

    def test_engine_level_default_and_raw_override(self, ibm_device):
        with ExecutionEngine(
            ibm_device, backend="density_matrix", mitigation="readout"
        ) as engine:
            default = engine.run_circuits([GHZBenchmark(3).circuits()[0]], shots=256, seed=1)
            assert isinstance(default[0], QuasiDistribution)
            raw = engine.run_circuits(
                [GHZBenchmark(3).circuits()[0]], shots=256, seed=1, mitigation="raw"
            )
            assert not isinstance(raw[0], QuasiDistribution)

    def test_stats_keeps_flat_transpile_keys(self, engine):
        engine.run(GHZBenchmark(3), shots=256, repetitions=1, seed=1)
        stats = engine.stats()
        for key in ("hits", "misses", "entries",
                    "calibration_hits", "calibration_misses", "calibration_entries"):
            assert key in stats
        assert stats["misses"] == 1

    def test_repr_shows_both_caches(self, engine):
        engine.run(GHZBenchmark(3), shots=256, repetitions=1, seed=1, mitigation="readout")
        rendered = repr(engine)
        assert "transpile_cache=" in rendered
        assert "calibration_cache=" in rendered

    def test_run_suite_passes_mitigation_through(self, engine):
        runs = engine.run_suite(
            [GHZBenchmark(3), GHZBenchmark(4)],
            shots=256, repetitions=1, seed=1, mitigation="readout",
        )
        assert [run.mitigation for run in runs] == ["readout", "readout"]

    def test_run_suite_rejects_unknown_technique(self, engine):
        """A misspelled technique name is a config error, not a per-benchmark skip."""
        from repro.exceptions import MitigationError

        with pytest.raises(MitigationError):
            engine.run_suite([GHZBenchmark(3)], shots=64, repetitions=1, mitigation="readuot")

    def test_run_suite_skips_unfoldable_benchmarks(self, engine):
        """ZNE cannot fold the EC codes' mid-circuit measurements: skip, keep the rest."""
        from repro.benchmarks import BitCodeBenchmark

        with pytest.warns(UserWarning, match="cannot fold"):
            runs = engine.run_suite(
                [GHZBenchmark(3), BitCodeBenchmark(3, 2)],
                shots=128, repetitions=1, seed=1, mitigation="zne",
            )
        assert [run.family for run in runs] == ["ghz"]

    def test_resolve_mitigator_names(self):
        assert resolve_mitigator(None) is None
        assert resolve_mitigator("readout").name == "readout"
        assert resolve_mitigator("zne").name == "zne"
        assert resolve_mitigator("dd").name == "dd"
        mitigator = ZNEMitigator(scale_factors=(1, 5))
        assert resolve_mitigator(mitigator) is mitigator

    def test_seeded_mitigated_runs_are_reproducible(self, ibm_device):
        scores = []
        for _ in range(2):
            with ExecutionEngine(ibm_device, backend="density_matrix", max_workers=3) as engine:
                run = engine.run(GHZBenchmark(4), shots=1024, repetitions=2, seed=42,
                                 mitigation="readout")
                scores.append(run.scores)
        assert scores[0] == scores[1]
