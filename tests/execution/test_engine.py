"""Engine tests: jobs, centralised fit checks, transpile-count guarantees,
the legacy shims and backend selection from the Fig. 2 driver."""

import threading
import time

import pytest

from repro.benchmarks import GHZBenchmark, figure2_benchmarks
from repro.circuits import Circuit
from repro.devices import get_device
from repro.exceptions import DeviceError
from repro.execution import ExecutionEngine, TranspileCache
from repro.execution import cache as cache_module
from repro.experiments import execute_circuits, reproduce_figure2, run_benchmark_on_device
from repro.simulation import Counts

DEVICE = "IBM-Casablanca-7Q"


@pytest.fixture
def transpile_spy(monkeypatch):
    """Counts every transpile() invocation the execution layer performs."""
    calls = {"n": 0}
    real = cache_module.transpile

    def spy(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(cache_module, "transpile", spy)
    return calls


class _BlockingBackend:
    """Protocol-conforming stub whose tasks wait for an explicit release."""

    name = "blocking"
    noisy = False

    def __init__(self) -> None:
        self.release = threading.Event()

    def run_batch(self, circuits, shots, *, noise_model=None, seed=None):
        if not self.release.wait(timeout=10):  # pragma: no cover - safety net
            raise RuntimeError("test backend never released")
        return [
            Counts({"0" * circuit.num_clbits: shots}, num_bits=circuit.num_clbits)
            for circuit in circuits
        ]


class _FailingBackend:
    name = "failing"
    noisy = False

    def run_batch(self, circuits, shots, *, noise_model=None, seed=None):
        raise RuntimeError("boom")


class TestJobLifecycle:
    def test_status_progression_and_result_order(self):
        backend = _BlockingBackend()
        circuits = [GHZBenchmark(n).circuits()[0] for n in (3, 4)]
        with ExecutionEngine(get_device(DEVICE), backend=backend, max_workers=1) as engine:
            job = engine.submit(circuits, shots=25, seed=0)
            deadline = time.monotonic() + 5
            while job.status == "queued" and time.monotonic() < deadline:
                time.sleep(0.01)
            assert job.status == "running"
            assert not job.done()
            backend.release.set()
            results = job.result(timeout=10)
        assert job.status == "done"
        assert job.done()
        assert [counts.shots for counts in results] == [25, 25]
        assert job.exceptions() == [None, None]

    def test_metadata_describes_each_circuit(self):
        with ExecutionEngine(get_device(DEVICE), backend="statevector") as engine:
            job = engine.submit(GHZBenchmark(3).circuits(), shots=10, seed=6)
            job.result()
        (meta,) = job.metadata
        assert meta["num_qubits"] == 3
        assert meta["compiled_qubits"] == len(meta["physical_qubits"])
        assert meta["seed"] == 6
        assert meta["compiled_depth"] > 0
        assert job.backend_name == "statevector"

    def test_result_timeout_bounds_the_whole_call(self):
        backend = _BlockingBackend()
        circuits = [GHZBenchmark(n).circuits()[0] for n in (3, 4, 5)]
        with ExecutionEngine(get_device(DEVICE), backend=backend, max_workers=1) as engine:
            job = engine.submit(circuits, shots=5)
            start = time.monotonic()
            with pytest.raises(Exception):  # concurrent.futures.TimeoutError
                job.result(timeout=0.3)
            elapsed = time.monotonic() - start
            backend.release.set()
            job.result(timeout=10)
        # The budget is shared across futures, not multiplied by their count.
        assert elapsed < 0.3 * len(circuits)

    def test_failed_circuit_surfaces_as_error(self):
        with ExecutionEngine(get_device(DEVICE), backend=_FailingBackend()) as engine:
            job = engine.submit([GHZBenchmark(3).circuits()[0]], shots=10)
            with pytest.raises(RuntimeError, match="boom"):
                job.result()
            assert job.status == "error"


class TestOversizedCheck:
    def test_error_message_names_both_qubit_counts(self):
        with ExecutionEngine(get_device("AQT-4Q")) as engine:
            with pytest.raises(DeviceError, match=r"needs 5 qubits, device has 4"):
                engine.run(GHZBenchmark(5), shots=10)

    def test_submit_checks_every_circuit(self):
        oversized = Circuit(5).h(0).measure_all()
        with ExecutionEngine(get_device("AQT-4Q")) as engine:
            with pytest.raises(DeviceError, match="5-qubit circuit"):
                engine.submit([GHZBenchmark(3).circuits()[0], oversized], shots=10)

    def test_backend_width_limit_raises_backend_capacity_error(self):
        """A compiled circuit wider than the backend's limit is a DeviceError
        subclass, so sweep drivers skip it like any other too-large instance
        instead of crashing mid-sweep on SimulationError."""
        from repro.exceptions import BackendCapacityError
        from repro.execution import DensityMatrixBackend

        device = get_device("IBM-Toronto-27Q")
        backend = DensityMatrixBackend(max_qubits=4)
        with ExecutionEngine(device, backend=backend) as engine:
            with pytest.raises(BackendCapacityError, match="backend limit of 4 qubits"):
                engine.run(GHZBenchmark(6), shots=10, repetitions=1)
            runs = engine.run_suite(
                [GHZBenchmark(3), GHZBenchmark(6)], shots=10, repetitions=1, seed=0
            )
            assert [run.typical["num_qubits"] for run in runs] == [3]

    def test_figure2_warns_on_backend_capacity_skips(self):
        from repro.execution import DensityMatrixBackend

        with pytest.warns(UserWarning, match="backend limit of 4 qubits"):
            runs = reproduce_figure2(
                devices=["IBM-Toronto-27Q"],
                small=True,
                shots=20,
                repetitions=1,
                families=["ghz"],
                backend=DensityMatrixBackend(max_qubits=4),
            )
        # ghz[3q] fits the 4-qubit backend budget; ghz[5q] was skipped loudly.
        assert [run.typical["num_qubits"] for run in runs] == [3]

    def test_run_suite_skips_oversized_by_default(self):
        benchmarks = [GHZBenchmark(3), GHZBenchmark(5), GHZBenchmark(4)]
        with ExecutionEngine(get_device("AQT-4Q"), backend="statevector") as engine:
            runs = engine.run_suite(benchmarks, shots=20, repetitions=1, seed=1)
            assert [run.typical["num_qubits"] for run in runs] == [3, 4]
            with pytest.raises(DeviceError):
                engine.run_suite(benchmarks, shots=20, repetitions=1, skip_oversized=False)


class TestTranspileCounts:
    def test_no_double_transpile_in_legacy_runner(self, transpile_spy):
        """Regression for the seed-era bug: circuits[0] was compiled once for
        metadata and again inside every repetition."""
        benchmark = GHZBenchmark(3)
        with pytest.deprecated_call():
            run_benchmark_on_device(
                benchmark, get_device(DEVICE), shots=20, repetitions=3, noisy=False
            )
        assert transpile_spy["n"] == len(benchmark.circuits())

    def test_small_figure2_suite_transpiles_at_least_2x_less_than_seed_path(
        self, transpile_spy
    ):
        """Acceptance criterion: cached engine vs the seed-era transpile count
        (1 metadata compile + repetitions * circuits per benchmark)."""
        device = get_device("IonQ-11Q")
        repetitions = 3
        instance_map = figure2_benchmarks(small=True)
        with ExecutionEngine(device, backend="statevector", max_workers=2) as engine:
            for instances in instance_map.values():
                engine.run_suite(instances, shots=10, repetitions=repetitions, seed=1)
        engine_calls = transpile_spy["n"]

        seed_path_calls = 0
        for instances in instance_map.values():
            for benchmark in instances:
                circuits = benchmark.circuits()
                if max(c.num_qubits for c in circuits) > device.num_qubits:
                    continue
                seed_path_calls += 1 + repetitions * len(circuits)

        assert engine_calls > 0
        assert 2 * engine_calls <= seed_path_calls

    def test_shared_cache_across_engines(self, transpile_spy):
        device = get_device(DEVICE)
        cache = TranspileCache()
        for backend in ("statevector", "trajectory"):
            with ExecutionEngine(device, backend=backend, cache=cache) as engine:
                engine.run(GHZBenchmark(3), shots=10, repetitions=1, seed=0)
        assert transpile_spy["n"] == 1
        assert cache.stats()["hits"] >= 1


class TestLegacyShims:
    def test_execute_circuits_warns_and_matches_engine(self):
        device = get_device(DEVICE)
        circuits = GHZBenchmark(3).circuits()
        with pytest.deprecated_call():
            legacy = execute_circuits(circuits, device, shots=80, noisy=False, seed=4)
        with ExecutionEngine(device, backend="statevector") as engine:
            modern = engine.run_circuits(circuits, shots=80, seed=4)
        assert [dict(a) for a in legacy] == [dict(b) for b in modern]

    def test_ideal_shim_honours_trajectories_for_collapse_circuits(self):
        """Regression: noisy=False + trajectories must reach the simulator —
        mid-circuit measurement/reset circuits are simulated per-trajectory
        even without noise, and the seed-era runner forwarded the knob there."""
        from repro.benchmarks import BitCodeBenchmark
        from repro.simulation import StatevectorSimulator
        from repro.transpiler import transpile

        device = get_device(DEVICE)
        circuits = BitCodeBenchmark(3, 2).circuits()
        with pytest.deprecated_call():
            shimmed = execute_circuits(
                circuits, device, shots=40, noisy=False, seed=5, trajectories=8
            )
        expected = []
        for index, circuit in enumerate(circuits):
            compact, _physical = transpile(circuit, device).compact()
            simulator = StatevectorSimulator(
                noise_model=None, seed=5 + 7919 * index, trajectories=8
            )
            expected.append(simulator.run(compact, shots=40))
        assert [dict(a) for a in shimmed] == [dict(b) for b in expected]

    def test_engine_forwards_trajectories_to_named_backends(self):
        device = get_device(DEVICE)
        with ExecutionEngine(device, backend="trajectory", trajectories=7) as engine:
            assert engine.backend.trajectories == 7
        with ExecutionEngine(device, backend="statevector", trajectories=7) as engine:
            assert engine.backend.trajectories == 7
        with ExecutionEngine(device, trajectories=9) as engine:  # default backend
            assert engine.backend.trajectories == 9

    def test_run_benchmark_on_device_warns_and_matches_engine(self):
        device = get_device(DEVICE)
        with pytest.deprecated_call():
            legacy = run_benchmark_on_device(
                GHZBenchmark(3), device, shots=60, repetitions=2, trajectories=10, seed=3
            )
        from repro.execution import TrajectoryBackend

        with ExecutionEngine(device, backend=TrajectoryBackend(trajectories=10)) as engine:
            modern = engine.run(GHZBenchmark(3), shots=60, repetitions=2, seed=3)
        assert legacy.scores == modern.scores
        assert legacy.record() == modern.record()


class TestFigure2BackendSelection:
    @pytest.mark.parametrize("backend", ["statevector", "trajectory", "density_matrix"])
    def test_all_three_backends_selectable(self, backend):
        runs = reproduce_figure2(
            devices=[DEVICE],
            small=True,
            shots=30,
            repetitions=1,
            trajectories=5,
            families=["ghz"],
            backend=backend,
            max_workers=2,
        )
        assert runs
        assert all(run.backend == backend for run in runs)
        assert all(0.0 <= run.mean_score <= 1.0 for run in runs)

    def test_ideal_backend_scores_above_noisy(self):
        kwargs = dict(
            devices=[DEVICE], small=True, shots=120, repetitions=1,
            families=["ghz"], seed=11,
        )
        ideal = reproduce_figure2(backend="statevector", **kwargs)
        noisy = reproduce_figure2(backend="trajectory", trajectories=20, **kwargs)
        assert min(run.mean_score for run in ideal) > 0.9
        mean = lambda runs: sum(r.mean_score for r in runs) / len(runs)
        assert mean(ideal) > mean(noisy)


class TestPlacementPlumbing:
    """placement= is selectable end-to-end: engine default, per-call, drivers."""

    def test_engine_default_placement(self):
        device = get_device(DEVICE)
        with ExecutionEngine(device, backend="statevector", placement="trivial") as engine:
            run = engine.run(GHZBenchmark(3), shots=40, repetitions=1, seed=5)
            assert run.placement == "trivial"
            entries = engine.prepare(GHZBenchmark(3).circuits())
            assert entries[0].transpiled.initial_layout == {0: 0, 1: 1, 2: 2}

    def test_per_call_override_beats_engine_default(self):
        device = get_device(DEVICE)
        with ExecutionEngine(device, backend="statevector") as engine:
            default_run = engine.run(GHZBenchmark(3), shots=40, repetitions=1, seed=5)
            trivial_run = engine.run(
                GHZBenchmark(3), shots=40, repetitions=1, seed=5, placement="trivial"
            )
            assert default_run.placement == "noise_aware"
            assert trivial_run.placement == "trivial"
            assert default_run.pipeline != trivial_run.pipeline
            # Two pipeline entries for the same circuit: no cache collision.
            assert engine.stats()["entries"] == 2

    def test_run_suite_forwards_placement(self):
        device = get_device(DEVICE)
        with ExecutionEngine(device, backend="statevector") as engine:
            runs = engine.run_suite(
                [GHZBenchmark(3)], shots=40, repetitions=1, seed=5, placement="trivial"
            )
            assert runs[0].placement == "trivial"

    def test_figure2_driver_forwards_placement(self):
        runs = reproduce_figure2(
            devices=[DEVICE],
            families=["ghz"],
            shots=40,
            repetitions=1,
            backend="statevector",
            placement="trivial",
        )
        assert runs and all(run.placement == "trivial" for run in runs)

    def test_legacy_runner_forwards_placement(self):
        with pytest.warns(DeprecationWarning):
            run = run_benchmark_on_device(
                GHZBenchmark(3),
                get_device(DEVICE),
                shots=40,
                repetitions=1,
                noisy=False,
                placement="trivial",
            )
        assert run.placement == "trivial"

    def test_job_metadata_carries_pipeline_and_backend_config(self):
        device = get_device(DEVICE)
        with ExecutionEngine(device, backend="statevector", max_workers=1) as engine:
            job = engine.submit(GHZBenchmark(3).circuits(), shots=10, seed=1)
            job.result()
            assert job.backend_metadata["name"] == "statevector"
            for row in job.metadata:
                assert row["pipeline"]
                assert row["compiled_critical_two_qubit_gates"] is not None


class TestParallelPrepare:
    def test_parallel_prepare_matches_serial(self, transpile_spy):
        device = get_device(DEVICE)
        circuits = [GHZBenchmark(n).circuits()[0] for n in (3, 4, 5, 6)]
        with ExecutionEngine(device, backend="statevector", max_workers=1) as serial:
            serial_entries = serial.prepare(circuits)
        serial_calls = transpile_spy["n"]

        with ExecutionEngine(device, backend="statevector", max_workers=4) as pooled:
            pooled_entries = pooled.prepare(circuits)
        assert transpile_spy["n"] == 2 * serial_calls  # same count, per engine

        for a, b in zip(serial_entries, pooled_entries):
            assert cache_module.circuit_fingerprint(a.compact) == (
                cache_module.circuit_fingerprint(b.compact)
            )
            assert a.transpiled.initial_layout == b.transpiled.initial_layout

    def test_parallel_prepare_compiles_duplicates_once(self, transpile_spy):
        device = get_device(DEVICE)
        circuit = GHZBenchmark(4).circuits()[0]
        with ExecutionEngine(device, backend="statevector", max_workers=4) as engine:
            entries = engine.prepare([circuit] * 8)
        assert transpile_spy["n"] == 1
        assert all(entry is entries[0] for entry in entries)

    def test_parallel_prepare_results_stay_deterministic(self):
        device = get_device(DEVICE)
        circuits = [GHZBenchmark(n).circuits()[0] for n in (3, 4, 5)]
        with ExecutionEngine(device, backend="statevector", max_workers=1) as serial:
            expected = serial.run_circuits(circuits, shots=60, seed=9)
        with ExecutionEngine(device, backend="statevector", max_workers=4) as pooled:
            observed = pooled.run_circuits(circuits, shots=60, seed=9)
        assert [dict(c) for c in observed] == [dict(c) for c in expected]
