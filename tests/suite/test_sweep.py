"""Tests for declarative sweeps, scenarios, expansion and sharding."""

import pytest

from repro.exceptions import BenchmarkError
from repro.suite import (
    BenchmarkSpec,
    EngineConfig,
    Scenario,
    Sweep,
    figure2_scenario,
    mitigated_scenario,
)


class TestSweep:
    def test_grid_expansion_last_axis_fastest(self):
        sweep = Sweep.of("bit_code", num_data_qubits=(3, 5), num_rounds=(2, 3))
        assert [spec.as_kwargs() for spec in sweep.specs()] == [
            {"num_data_qubits": 3, "num_rounds": 2},
            {"num_data_qubits": 3, "num_rounds": 3},
            {"num_data_qubits": 5, "num_rounds": 2},
            {"num_data_qubits": 5, "num_rounds": 3},
        ]

    def test_explicit_points(self):
        sweep = Sweep.explicit("ghz", [{"num_qubits": 3}, {"num_qubits": 11}])
        assert [spec.as_kwargs() for spec in sweep.specs()] == [
            {"num_qubits": 3},
            {"num_qubits": 11},
        ]

    def test_grid_and_points_mutually_exclusive(self):
        with pytest.raises(BenchmarkError):
            Sweep(
                family="ghz",
                grid=(("num_qubits", (3,)),),
                points=((("num_qubits", 5),),),
            )

    def test_empty_sweep_yields_parameterless_spec(self):
        assert Sweep(family="ghz").specs() == [BenchmarkSpec(family="ghz")]

    def test_json_round_trip(self):
        sweep = Sweep.of("vqe", num_qubits=(4, 7), num_layers=(1, 2))
        assert Sweep.from_dict(sweep.as_dict()) == sweep
        explicit = Sweep.explicit("ghz", [{"num_qubits": 3}])
        assert Sweep.from_dict(explicit.as_dict()) == explicit


class TestScenario:
    def _scenario(self, **kwargs):
        defaults = dict(
            name="test",
            sweeps=(Sweep.of("ghz", num_qubits=(3, 5)),),
            devices=("IBM-Casablanca-7Q", "IonQ-11Q"),
        )
        defaults.update(kwargs)
        return Scenario(**defaults)

    def test_expansion_is_spec_major(self):
        units = self._scenario().expand()
        assert [(u.spec.as_kwargs()["num_qubits"], u.engine.device) for u in units] == [
            (3, "IBM-Casablanca-7Q"),
            (3, "IonQ-11Q"),
            (5, "IBM-Casablanca-7Q"),
            (5, "IonQ-11Q"),
        ]
        assert [u.index for u in units] == [0, 1, 2, 3]

    def test_mitigation_cross_product(self):
        units = self._scenario(mitigations=("raw", "readout")).expand()
        assert len(units) == 8
        assert [u.mitigation_label for u in units[:2]] == ["raw", "readout"]

    def test_shards_group_by_engine_and_share_across_techniques(self):
        scenario = self._scenario(mitigations=("raw", "readout"))
        shards = scenario.shards()
        assert [shard.engine.device for shard in shards] == [
            "IBM-Casablanca-7Q",
            "IonQ-11Q",
        ]
        first = shards[0]
        assert [label for label, _ in first.groups] == ["raw", "readout"]
        # both specs of the sweep land in each technique group
        assert all(len(group) == 2 for _, group in first.groups)

    def test_device_override(self):
        units = self._scenario().expand(devices=["AQT-4Q"])
        assert {u.engine.device for u in units} == {"AQT-4Q"}

    def test_empty_devices_resolve_to_all_registered(self):
        scenario = self._scenario(devices=())
        devices = {u.engine.device for u in scenario.expand()}
        assert len(devices) == 9

    def test_unit_keys_unique_and_stable(self):
        units = self._scenario(mitigations=("raw", "zne")).expand()
        keys = [u.key() for u in units]
        assert len(set(keys)) == len(keys)
        assert keys == [u.key() for u in self._scenario(mitigations=("raw", "zne")).expand()]

    def test_json_round_trip(self):
        scenario = self._scenario(mitigations=("raw", "readout"))
        assert Scenario.from_dict(scenario.as_dict()) == scenario

    def test_engine_config_key(self):
        config = EngineConfig("IonQ-11Q", None, 2, "trivial")
        assert config.key() == "IonQ-11Q/default/O2/trivial"


class TestStandardScenarios:
    def test_figure2_scenario_small_counts(self):
        scenario = figure2_scenario(small=True, devices=["IonQ-11Q"])
        assert scenario.name == "figure2"
        assert len(scenario.specs()) == 9  # reduced set: 9 instances
        assert len(scenario.expand()) == 9

    def test_figure2_scenario_family_filter_order(self):
        scenario = figure2_scenario(small=True, families=["vqe", "ghz"])
        assert [sweep.family for sweep in scenario.sweeps] == ["vqe", "ghz"]

    def test_figure2_scenario_unknown_family(self):
        with pytest.raises(KeyError):
            figure2_scenario(families=["bogus"])

    def test_mitigated_scenario_axes(self):
        scenario = mitigated_scenario(
            techniques=("raw", "readout"), small=True, devices=["IonQ-11Q"]
        )
        assert scenario.mitigations == ("raw", "readout")
        assert len(scenario.expand()) == 18
