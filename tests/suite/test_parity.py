"""Byte-identical parity of the registry-generated instance lists.

``figure2_benchmarks`` and ``scaling_suite`` used to be hand-written
instance lists; they are now generated from the sweep definitions in
:mod:`repro.suite.scenarios`.  These tests pin the generated lists against
faithful copies of the seed-era constructions — same ordering, same types,
same labels, and byte-identical QASM for every non-variational circuit.
"""

from repro.benchmarks import (
    BitCodeBenchmark,
    GHZBenchmark,
    HamiltonianSimulationBenchmark,
    MerminBellBenchmark,
    PhaseCodeBenchmark,
    VQEBenchmark,
    VanillaQAOABenchmark,
    ZZSwapQAOABenchmark,
    figure2_benchmarks,
    scaling_suite,
)

#: Families whose representative circuit is cheap to build (no classical
#: pre-optimisation), compared byte-for-byte via QASM.
STRUCTURAL_FAMILIES = {"ghz", "mermin_bell", "bit_code", "phase_code"}


def seed_figure2_benchmarks(small=False):
    """The seed implementation of figure2_benchmarks, copied verbatim."""
    if small:
        return {
            "ghz": [GHZBenchmark(3), GHZBenchmark(5)],
            "mermin_bell": [MerminBellBenchmark(3)],
            "bit_code": [BitCodeBenchmark(3, 2)],
            "phase_code": [PhaseCodeBenchmark(3, 2)],
            "vqe": [VQEBenchmark(4, 1)],
            "hamiltonian_simulation": [
                HamiltonianSimulationBenchmark(4, steps=1),
            ],
            "zzswap_qaoa": [ZZSwapQAOABenchmark(4)],
            "vanilla_qaoa": [VanillaQAOABenchmark(4)],
        }
    return {
        "ghz": [GHZBenchmark(n) for n in (3, 5, 7, 11)],
        "mermin_bell": [MerminBellBenchmark(n) for n in (3, 4)],
        "bit_code": [
            BitCodeBenchmark(3, 2),
            BitCodeBenchmark(3, 3),
            BitCodeBenchmark(5, 2),
            BitCodeBenchmark(5, 3),
        ],
        "phase_code": [
            PhaseCodeBenchmark(3, 2),
            PhaseCodeBenchmark(3, 3),
            PhaseCodeBenchmark(5, 2),
            PhaseCodeBenchmark(5, 3),
        ],
        "vqe": [
            VQEBenchmark(4, 1),
            VQEBenchmark(4, 2),
            VQEBenchmark(7, 1),
            VQEBenchmark(7, 2),
        ],
        "hamiltonian_simulation": [
            HamiltonianSimulationBenchmark(4, steps=1),
            HamiltonianSimulationBenchmark(4, steps=3),
            HamiltonianSimulationBenchmark(7, steps=1),
            HamiltonianSimulationBenchmark(7, steps=3),
            HamiltonianSimulationBenchmark(11, steps=1),
            HamiltonianSimulationBenchmark(11, steps=3),
        ],
        "zzswap_qaoa": [ZZSwapQAOABenchmark(n) for n in (4, 5, 7, 11)],
        "vanilla_qaoa": [VanillaQAOABenchmark(n) for n in (4, 5, 7, 11)],
    }


def seed_scaling_suite(sizes=(3, 5, 7, 11, 16, 27, 50, 100, 250, 500, 1000)):
    """The seed implementation of scaling_suite, copied verbatim."""
    suite = []
    for size in sizes:
        suite.append(GHZBenchmark(max(size, 2)))
        data_qubits = max((size + 1) // 2, 2)
        suite.append(BitCodeBenchmark(data_qubits, num_rounds=2))
        suite.append(PhaseCodeBenchmark(data_qubits, num_rounds=2))
        suite.append(HamiltonianSimulationBenchmark(max(size, 2), steps=1))
        if size <= 7:
            suite.append(MerminBellBenchmark(max(size, 3)))
        if size <= 12:
            suite.append(VQEBenchmark(max(size, 2), num_layers=1))
            suite.append(VanillaQAOABenchmark(max(size, 3)))
            suite.append(ZZSwapQAOABenchmark(max(size, 3)))
    return suite


def assert_same_instances(generated, expected):
    assert len(generated) == len(expected)
    for got, want in zip(generated, expected):
        assert type(got) is type(want)
        assert str(got) == str(want)
        if want.name in STRUCTURAL_FAMILIES:
            # Representative circuits are cheap here: compare bytes.
            assert got.circuit().to_qasm() == want.circuit().to_qasm()


class TestFigure2Parity:
    def test_small_set_byte_identical(self):
        generated = figure2_benchmarks(small=True)
        expected = seed_figure2_benchmarks(small=True)
        assert list(generated) == list(expected)
        for family in expected:
            assert_same_instances(generated[family], expected[family])

    def test_full_set_byte_identical(self):
        generated = figure2_benchmarks(small=False)
        expected = seed_figure2_benchmarks(small=False)
        assert list(generated) == list(expected)
        for family in expected:
            assert_same_instances(generated[family], expected[family])


class TestScalingSuiteParity:
    def test_default_sizes_byte_identical(self):
        # The large tail (>= 250 qubits) is exercised by the coverage
        # benchmarks; the parity claim is about list structure, so a
        # truncated size range keeps the test fast while covering every
        # conditional of the seed implementation.
        sizes = (1, 3, 5, 7, 11, 16, 27, 50)
        assert_same_instances(scaling_suite(sizes), seed_scaling_suite(sizes))

    def test_nisq_sizes_byte_identical(self):
        sizes = (3, 8, 12, 13)
        assert_same_instances(scaling_suite(sizes), seed_scaling_suite(sizes))
