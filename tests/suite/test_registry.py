"""Tests for the benchmark registry, specs and the did-you-mean errors."""

import pytest

from repro.benchmarks import Benchmark, GHZBenchmark, make_benchmark
from repro.exceptions import BenchmarkError, UnknownBenchmarkError
from repro.suite import BenchmarkRegistry, BenchmarkSpec, get_registry


class TestRegistry:
    def test_default_registry_has_all_eight_families(self):
        assert set(get_registry().families()) == {
            "ghz",
            "mermin_bell",
            "bit_code",
            "phase_code",
            "vanilla_qaoa",
            "zzswap_qaoa",
            "vqe",
            "hamiltonian_simulation",
        }

    def test_register_decorator_and_build(self):
        registry = BenchmarkRegistry()

        @registry.register("toy")
        class ToyBenchmark(GHZBenchmark):
            name = "toy"

        spec = registry.spec("toy", num_qubits=3)
        built = registry.build(spec)
        assert isinstance(built, ToyBenchmark)

    def test_duplicate_registration_rejected_without_overwrite(self):
        registry = BenchmarkRegistry()

        @registry.register("dup")
        class First(GHZBenchmark):
            pass

        with pytest.raises(BenchmarkError, match="already registered"):

            @registry.register("dup")
            class Second(GHZBenchmark):
                pass

        @registry.register("dup", overwrite=True)
        class Third(GHZBenchmark):
            pass

        assert registry.family("dup") is Third

    def test_unknown_family_raises_with_suggestion(self):
        with pytest.raises(UnknownBenchmarkError, match="did you mean 'ghz'"):
            get_registry().family("gzh")

    def test_unknown_family_is_a_keyerror(self):
        """Callers of the historical make_benchmark API caught KeyError."""
        with pytest.raises(KeyError):
            make_benchmark("no_such_family")
        with pytest.raises(UnknownBenchmarkError):
            make_benchmark("no_such_family")

    def test_make_benchmark_builds_instances(self):
        benchmark = make_benchmark("ghz", 4)
        assert isinstance(benchmark, GHZBenchmark)
        assert benchmark.num_qubits() == 4

    def test_build_is_memoized_per_spec(self):
        registry = get_registry()
        spec = BenchmarkSpec.make("ghz", num_qubits=6)
        first = registry.build(spec)
        second = registry.build(BenchmarkSpec.make("ghz", num_qubits=6))
        assert first is second
        other = registry.build(BenchmarkSpec.make("ghz", num_qubits=7))
        assert other is not first

    def test_features_memoized_per_spec(self):
        registry = get_registry()
        spec = BenchmarkSpec.make("ghz", num_qubits=6)
        assert registry.features(spec) is registry.features(spec)

    def test_lazy_construction(self):
        """Specs do not construct benchmarks until built."""
        registry = BenchmarkRegistry()
        constructed = []

        @registry.register("lazy")
        class LazyBenchmark(GHZBenchmark):
            def __init__(self, num_qubits):
                constructed.append(num_qubits)
                super().__init__(num_qubits)

        spec = registry.spec("lazy", num_qubits=3)
        assert constructed == []
        registry.build(spec)
        assert constructed == [3]
        registry.build(spec)
        assert constructed == [3]


class TestBenchmarkSpec:
    def test_hashable_and_order_insensitive(self):
        a = BenchmarkSpec.make("vqe", num_qubits=4, num_layers=1)
        b = BenchmarkSpec.make("vqe", num_layers=1, num_qubits=4)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_json_round_trip(self):
        spec = BenchmarkSpec.make("bit_code", num_data_qubits=3, num_rounds=2)
        assert BenchmarkSpec.from_json(spec.to_json()) == spec

    def test_sequence_params_normalised(self):
        a = BenchmarkSpec.make("bit_code", num_data_qubits=3, num_rounds=1, initial_state=[1, 0, 1])
        b = BenchmarkSpec.make(
            "bit_code", num_data_qubits=3, num_rounds=1, initial_state=(1, 0, 1)
        )
        assert a == b
        built = a.build()
        assert built.initial_state == (1, 0, 1)

    def test_key_is_stable(self):
        spec = BenchmarkSpec.make("ghz", num_qubits=5)
        assert spec.key() == "ghz(num_qubits=5)"

    def test_unserializable_param_rejected(self):
        with pytest.raises(BenchmarkError, match="JSON-representable"):
            BenchmarkSpec.make("ghz", num_qubits=object())

    def test_build_uses_default_registry(self):
        benchmark = BenchmarkSpec.make("ghz", num_qubits=4).build()
        assert isinstance(benchmark, Benchmark)
        assert str(benchmark) == "ghz[4q]"
