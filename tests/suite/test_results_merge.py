"""Tests for SuiteResult.merge conflict rejection and payload versioning."""

import pytest

from repro.exceptions import AnalysisError, SchemaVersionError
from repro.suite.results import SCHEMA_VERSION, SpecOutcome, SuiteResult


def make_outcome(key="u1", index=0, reason=""):
    return SpecOutcome(
        key=key,
        spec={"family": "ghz", "params": {"num_qubits": 3}},
        device="IonQ-11Q",
        mitigation="raw",
        index=index,
        status="skipped" if reason else "ok",
        reason=reason,
    )


class TestMerge:
    def test_disjoint_outcomes_union(self):
        left, right = SuiteResult("s"), SuiteResult("s")
        left.add(make_outcome("u1", index=0))
        right.add(make_outcome("u2", index=1))
        merged = left.merge(right)
        assert merged is left
        assert len(left) == 2
        assert left.completed_keys() == {"u1", "u2"}

    def test_identical_duplicates_are_benign(self):
        left, right = SuiteResult("s"), SuiteResult("s")
        left.add(make_outcome("u1"))
        right.add(make_outcome("u1"))
        left.merge(right)
        assert len(left) == 1

    def test_volatile_fields_do_not_conflict(self):
        left, right = SuiteResult("s"), SuiteResult("s")
        ours = make_outcome("u1", index=0)
        ours.seconds = 1.0
        theirs = make_outcome("u1", index=5)
        theirs.seconds = 2.0
        left.add(ours)
        right.add(theirs)
        left.merge(right)
        # First-writer wins for benign duplicates.
        assert left.outcomes()[0].seconds == 1.0

    def test_conflicting_payloads_rejected(self):
        left, right = SuiteResult("s"), SuiteResult("s")
        left.add(make_outcome("u1"))
        right.add(make_outcome("u1", reason="did not fit"))
        with pytest.raises(AnalysisError, match="conflicting payloads.*u1"):
            left.merge(right)

    def test_conflict_listing_is_truncated(self):
        left, right = SuiteResult("s"), SuiteResult("s")
        for index in range(5):
            left.add(make_outcome(f"u{index}", index=index))
            right.add(make_outcome(f"u{index}", index=index, reason="conflict"))
        with pytest.raises(AnalysisError, match=r"\(5 total\)"):
            left.merge(right)

    def test_scenario_mismatch_rejected(self):
        left, right = SuiteResult("a"), SuiteResult("b")
        with pytest.raises(AnalysisError, match="scenario"):
            left.merge(right)

    def test_knob_mismatch_rejected(self):
        left, right = SuiteResult("s"), SuiteResult("s")
        left.bind_config("s", {"shots": 100})
        right.bind_config("s", {"shots": 200})
        with pytest.raises(AnalysisError, match="different knobs"):
            left.merge(right)

    def test_engine_stats_are_summed(self):
        left, right = SuiteResult("s"), SuiteResult("s")
        left.note_engine_stats("e", {"hits": 1, "entries": 4})
        right.note_engine_stats("e", {"hits": 2, "entries": 3})
        left.merge(right)
        assert left.engine_stats["e"]["hits"] == 3
        assert left.engine_stats["e"]["entries"] == 4  # gauge: max, not sum


class TestSchemaVersion:
    def test_outcome_payloads_are_stamped(self):
        payload = make_outcome().as_dict()
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_suite_payloads_are_stamped(self):
        result = SuiteResult("s")
        result.add(make_outcome())
        data = result.as_dict()
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["outcomes"][0]["schema_version"] == SCHEMA_VERSION

    def test_roundtrip(self):
        result = SuiteResult("s")
        result.add(make_outcome())
        result.note_engine_stats("e", {"hits": 1})
        reloaded = SuiteResult.from_json(result.to_json())
        assert reloaded.completed_keys() == result.completed_keys()
        assert reloaded.engine_stats == result.engine_stats

    def test_future_outcome_version_rejected(self):
        payload = make_outcome().as_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaVersionError, match="schema version"):
            SpecOutcome.from_dict(payload)

    def test_future_suite_version_rejected(self):
        result = SuiteResult("s")
        data = result.as_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaVersionError):
            SuiteResult.from_dict(data)

    def test_missing_version_rejected(self):
        with pytest.raises(SchemaVersionError, match="no schema version"):
            SuiteResult.from_dict({"scenario": "s", "outcomes": []})

    def test_legacy_v1_schema_field_still_loads(self):
        result = SuiteResult("s")
        result.add(make_outcome())
        data = result.as_dict()
        del data["schema_version"]
        data["schema"] = 1
        for outcome in data["outcomes"]:
            outcome.pop("schema_version", None)
        reloaded = SuiteResult.from_dict(data)
        assert len(reloaded) == 1
