"""Tests for sharded scenario execution, streaming results and resumability."""

import pytest

from repro.benchmarks import figure2_benchmarks
from repro.devices import get_device
from repro.exceptions import MitigationError
from repro.execution import ExecutionEngine
from repro.suite import Scenario, Sweep, figure2_scenario, mitigated_scenario
from repro.suite.results import SuiteResult
from repro.suite.runner import run_scenario

DEVICES = ["IBM-Casablanca-7Q", "IonQ-11Q"]
KNOBS = dict(shots=60, repetitions=1, seed=99, trajectories=12)


@pytest.fixture(scope="module")
def small_result():
    scenario = figure2_scenario(
        small=True, devices=DEVICES, families=["ghz", "bit_code", "vanilla_qaoa"]
    )
    return run_scenario(scenario, **KNOBS)


class TestRunScenario:
    def test_runs_in_scenario_order(self, small_result):
        labels = [(run.benchmark, run.device) for run in small_result.runs()]
        assert labels == [
            ("ghz[3q]", "IBM-Casablanca-7Q"),
            ("ghz[3q]", "IonQ-11Q"),
            ("ghz[5q]", "IBM-Casablanca-7Q"),
            ("ghz[5q]", "IonQ-11Q"),
            ("bit_code[3d,2r]", "IBM-Casablanca-7Q"),
            ("bit_code[3d,2r]", "IonQ-11Q"),
            ("vanilla_qaoa[4q]", "IBM-Casablanca-7Q"),
            ("vanilla_qaoa[4q]", "IonQ-11Q"),
        ]

    def test_scores_identical_to_direct_engine_loop(self, small_result):
        """The Scenario API must not change scores at a fixed seed (the
        acceptance criterion guarding the figure2/mitigated rewrite)."""
        expected = {}
        for family in ["ghz", "bit_code", "vanilla_qaoa"]:
            for benchmark in figure2_benchmarks(small=True)[family]:
                for name in DEVICES:
                    with ExecutionEngine(get_device(name), trajectories=12) as engine:
                        run = engine.run(benchmark, shots=60, repetitions=1, seed=99)
                    expected[(run.benchmark, run.device)] = run.scores
        for run in small_result.runs():
            assert run.scores == expected[(run.benchmark, run.device)]

    def test_per_run_timing_and_engine_stats(self, small_result):
        assert all(outcome.seconds > 0 for outcome in small_result.outcomes())
        assert small_result.total_seconds() > 0
        for stats in small_result.engine_stats.values():
            assert stats["misses"] > 0
        assert set(small_result.engine_stats) == {
            "IBM-Casablanca-7Q/default/O1/noise_aware",
            "IonQ-11Q/default/O1/noise_aware",
        }

    def test_feature_vectors_per_spec(self, small_result):
        vectors = small_result.feature_vectors()
        assert "ghz(num_qubits=3)" in vectors
        assert vectors["ghz(num_qubits=3)"]["critical_depth"] == pytest.approx(1.0)

    def test_streaming_observer_sees_every_outcome(self):
        seen = []
        scenario = figure2_scenario(small=True, devices=["IonQ-11Q"], families=["ghz"])
        result = run_scenario(scenario, on_outcome=seen.append, **KNOBS)
        assert [outcome.key for outcome in seen] == [
            outcome.key for outcome in result.outcomes()
        ]
        assert len(seen) == 2

    def test_oversized_benchmarks_recorded_as_skips(self):
        scenario = figure2_scenario(small=True, devices=["AQT-4Q"], families=["ghz"])
        result = run_scenario(scenario, **KNOBS)
        skipped = result.skipped()
        assert [s.spec["params"]["num_qubits"] for s in skipped] == [5]
        assert "does not fit" in skipped[0].reason
        assert len(result.runs()) == 1


class TestResume:
    def test_round_trip_and_resume_skips_completed(self, small_result, tmp_path):
        path = tmp_path / "partial.json"
        small_result.to_json(path)
        reloaded = SuiteResult.from_json(path)
        assert reloaded.scores() == small_result.scores()
        assert reloaded.completed_keys() == small_result.completed_keys()

        scenario = figure2_scenario(
            small=True, devices=DEVICES, families=["ghz", "bit_code", "vanilla_qaoa"]
        )
        calls = []
        original = ExecutionEngine.run

        def counting_run(self, benchmark, **kwargs):
            calls.append(str(benchmark))
            return original(self, benchmark, **kwargs)

        ExecutionEngine.run = counting_run
        try:
            resumed = run_scenario(scenario, partial=reloaded, **KNOBS)
        finally:
            ExecutionEngine.run = original
        assert calls == []
        assert resumed is reloaded

    def test_partial_resume_executes_only_missing_units(self):
        scenario = figure2_scenario(small=True, devices=["IonQ-11Q"], families=["ghz"])
        full = run_scenario(scenario, **KNOBS)
        partial = SuiteResult.from_json(full.to_json())
        dropped = [o for o in partial.outcomes() if "num_qubits=5" in o.key]
        assert len(dropped) == 1
        partial._outcomes.pop(dropped[0].key)

        calls = []
        original = ExecutionEngine.run

        def counting_run(self, benchmark, **kwargs):
            calls.append(str(benchmark))
            return original(self, benchmark, **kwargs)

        ExecutionEngine.run = counting_run
        try:
            resumed = run_scenario(scenario, partial=partial, **KNOBS)
        finally:
            ExecutionEngine.run = original
        assert calls == ["ghz[5q]"]
        assert resumed.scores() == full.scores()

    def test_resume_with_different_knobs_rejected(self, small_result):
        from repro.exceptions import AnalysisError

        scenario = figure2_scenario(
            small=True, devices=DEVICES, families=["ghz", "bit_code", "vanilla_qaoa"]
        )
        partial = SuiteResult.from_json(small_result.to_json())
        bad = dict(KNOBS)
        bad["shots"] = 999
        with pytest.raises(AnalysisError, match="different knobs"):
            run_scenario(scenario, partial=partial, **bad)

    def test_resume_with_different_scenario_rejected(self, small_result):
        from repro.exceptions import AnalysisError

        partial = SuiteResult.from_json(small_result.to_json())
        other = mitigated_scenario(devices=["IonQ-11Q"], families=["ghz"])
        with pytest.raises(AnalysisError, match="cannot resume"):
            run_scenario(other, partial=partial, **KNOBS)

    def test_resumed_shard_stats_merge(self):
        scenario = figure2_scenario(small=True, devices=["IonQ-11Q"], families=["ghz"])
        full = run_scenario(scenario, **KNOBS)
        partial = SuiteResult.from_json(full.to_json())
        dropped = [o for o in partial.outcomes() if "num_qubits=5" in o.key][0]
        partial._outcomes.pop(dropped.key)
        resumed = run_scenario(scenario, partial=partial, **KNOBS)
        merged = resumed.engine_stats["IonQ-11Q/default/O1/noise_aware"]
        # full run compiled 2 distinct circuits, resumed tail compiled 1
        assert merged["misses"] == 3

    def test_save_path_persists_after_each_shard(self, tmp_path):
        path = tmp_path / "stream.json"
        scenario = figure2_scenario(small=True, devices=["IonQ-11Q"], families=["ghz"])
        result = run_scenario(scenario, save_path=path, **KNOBS)
        assert SuiteResult.from_json(path).scores() == result.scores()


class TestMitigatedScenario:
    def test_unknown_technique_raises_before_execution(self):
        scenario = mitigated_scenario(
            techniques=("raw", "not_a_technique"), devices=["IonQ-11Q"], families=["ghz"]
        )
        with pytest.raises(MitigationError):
            run_scenario(scenario, **KNOBS)

    def test_technique_axis_produces_one_run_each(self):
        scenario = mitigated_scenario(
            techniques=("raw", "readout"),
            small=True,
            devices=["IBM-Casablanca-7Q"],
            families=["ghz"],
        )
        result = run_scenario(scenario, shots=40, repetitions=1, seed=7, trajectories=10)
        by_technique = {}
        for run in result.runs():
            by_technique.setdefault(run.mitigation or "raw", []).append(run.benchmark)
        assert by_technique == {
            "raw": ["ghz[3q]", "ghz[5q]"],
            "readout": ["ghz[3q]", "ghz[5q]"],
        }

    def test_mismatched_technique_skipped_loudly_exactly_once(self):
        scenario = mitigated_scenario(
            techniques=("zne",), small=True, devices=["IonQ-11Q"], families=["bit_code"]
        )
        with pytest.warns(UserWarning, match="skipping") as captured:
            result = run_scenario(scenario, **KNOBS)
        assert result.runs() == []
        assert len(result.skipped()) == 1
        skip_warnings = [w for w in captured if "skipping" in str(w.message)]
        assert len(skip_warnings) == 1  # engine defers to the runner's hook


class TestScenarioComposition:
    def test_multi_axis_scenario(self):
        scenario = Scenario(
            name="ablation",
            sweeps=(Sweep.of("ghz", num_qubits=(3,)),),
            devices=("IBM-Casablanca-7Q",),
            optimization_levels=(0, 1),
            placements=("trivial", "noise_aware"),
        )
        result = run_scenario(scenario, **KNOBS)
        runs = result.runs()
        assert len(runs) == 4
        assert {(run.placement, run.pipeline != "") for run in runs} == {
            ("trivial", True),
            ("noise_aware", True),
        }
        assert len(result.engine_stats) == 4
