"""Tests for fidelities and the correlation analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    correlation_matrix,
    hellinger_distance,
    hellinger_fidelity,
    linear_regression,
    r_squared,
    total_variation_distance,
)
from repro.exceptions import AnalysisError


class TestHellinger:
    def test_identical_distributions(self):
        counts = {"00": 50, "11": 50}
        assert hellinger_fidelity(counts, counts) == pytest.approx(1.0)
        assert hellinger_distance(counts, counts) == pytest.approx(0.0)

    def test_disjoint_distributions(self):
        assert hellinger_fidelity({"00": 10}, {"11": 10}) == pytest.approx(0.0)

    def test_normalisation_independent(self):
        a = {"0": 1, "1": 1}
        b = {"0": 500, "1": 500}
        assert hellinger_fidelity(a, b) == pytest.approx(1.0)

    def test_known_value(self):
        # p = (1, 0), q = (0.5, 0.5): fidelity = (sqrt(0.5))**2 = 0.5
        assert hellinger_fidelity({"0": 100}, {"0": 50, "1": 50}) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(Exception):
            hellinger_fidelity({}, {"0": 1})

    @given(
        p0=st.integers(1, 100),
        p1=st.integers(1, 100),
        q0=st.integers(1, 100),
        q1=st.integers(1, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_fidelity_bounded(self, p0, p1, q0, q1):
        fidelity = hellinger_fidelity({"0": p0, "1": p1}, {"0": q0, "1": q1})
        assert 0.0 <= fidelity <= 1.0 + 1e-12


class TestTotalVariation:
    def test_identical_is_zero(self):
        assert total_variation_distance({"0": 2, "1": 2}, {"0": 1, "1": 1}) == pytest.approx(0.0)

    def test_disjoint_is_one(self):
        assert total_variation_distance({"0": 5}, {"1": 5}) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            total_variation_distance({}, {"0": 1})


class TestLinearRegression:
    def test_perfect_line(self):
        fit = linear_regression([0, 1, 2, 3], [1, 3, 5, 7])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(10) == pytest.approx(21.0)

    def test_uncorrelated_data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=200)
        y = rng.normal(size=200)
        assert r_squared(x, y) < 0.1

    def test_constant_feature_gives_zero(self):
        assert r_squared([1, 1, 1, 1], [0.1, 0.5, 0.9, 0.3]) == 0.0

    def test_too_few_points_rejected(self):
        with pytest.raises(AnalysisError):
            linear_regression([1], [2])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            linear_regression([1, 2], [1, 2, 3])


class TestCorrelationMatrix:
    def _records(self):
        records = []
        for device, slope in (("dev_a", 1.0), ("dev_b", -0.5)):
            for value in np.linspace(0, 1, 8):
                records.append(
                    {
                        "device": device,
                        "score": slope * value + 0.1,
                        "feature_x": value,
                        "feature_noise": 0.42,
                    }
                )
        return records

    def test_strong_feature_detected(self):
        matrix = correlation_matrix(self._records(), ["feature_x", "feature_noise"])
        assert matrix["dev_a"]["feature_x"] == pytest.approx(1.0)
        assert matrix["dev_b"]["feature_x"] == pytest.approx(1.0)
        assert matrix["dev_a"]["feature_noise"] == 0.0

    def test_empty_records_rejected(self):
        with pytest.raises(AnalysisError):
            correlation_matrix([], ["x"])

    def test_single_record_group_gives_zero(self):
        records = [{"device": "solo", "score": 0.5, "f": 0.1}]
        matrix = correlation_matrix(records, ["f"])
        assert matrix["solo"]["f"] == 0.0
