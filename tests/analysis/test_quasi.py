"""Quasi-probability support in the shared normalisation and distance helpers."""

from __future__ import annotations

import pytest

from repro.analysis import hellinger_fidelity, total_variation_distance
from repro.exceptions import AnalysisError, SimulationError
from repro.simulation import Counts, QuasiDistribution, normalized_probabilities


class TestNormalizedProbabilities:
    def test_counts_normalise(self):
        assert normalized_probabilities({"0": 3, "1": 1}) == {"0": 0.75, "1": 0.25}

    def test_negative_weights_clipped_and_renormalised(self):
        result = normalized_probabilities({"00": 0.8, "11": 0.3, "01": -0.1})
        assert "01" not in result
        assert sum(result.values()) == pytest.approx(1.0)
        assert result["00"] == pytest.approx(0.8 / 1.1)

    def test_unclipped_mode_keeps_negatives(self):
        result = normalized_probabilities({"0": 1.5, "1": -0.5}, clip_negative=False)
        assert result["1"] == pytest.approx(-0.5)
        assert sum(result.values()) == pytest.approx(1.0)

    def test_empty_and_nonpositive_rejected(self):
        with pytest.raises(SimulationError):
            normalized_probabilities({})
        with pytest.raises(SimulationError):
            normalized_probabilities({"0": -1.0})

    def test_counts_probabilities_uses_shared_path(self):
        counts = Counts({"01": 30, "10": 10})
        assert counts.probabilities() == {"01": 0.75, "10": 0.25}


class TestQuasiDistribution:
    def test_negativity_and_probabilities(self):
        quasi = QuasiDistribution({"00": 1.02, "11": 0.03, "01": -0.05})
        assert quasi.negativity() == pytest.approx(0.05)
        probabilities = quasi.probabilities()
        assert "01" not in probabilities
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_num_bits_inferred(self):
        assert QuasiDistribution({"010": 1.0}).num_bits == 3

    def test_shots_defaults_to_clipped_total(self):
        quasi = QuasiDistribution({"0": 0.9, "1": -0.1})
        assert quasi.shots == pytest.approx(0.9)
        assert QuasiDistribution({"0": 1.0}, shots=500.0).shots == 500.0

    def test_expectation_parity_uses_raw_weights(self):
        quasi = QuasiDistribution({"0": 1.1, "1": -0.1})
        assert quasi.expectation_parity() == pytest.approx(1.2)


class TestDistancesOnQuasi:
    def test_hellinger_accepts_quasi(self):
        quasi = QuasiDistribution({"00": 0.52, "11": 0.50, "01": -0.02})
        assert hellinger_fidelity(quasi, {"00": 0.5, "11": 0.5}) == pytest.approx(1.0, abs=1e-3)

    def test_tvd_accepts_quasi(self):
        quasi = QuasiDistribution({"0": 0.75, "1": 0.27, "00": -0.02})
        counts = Counts({"0": 75, "1": 25})
        assert total_variation_distance(quasi, counts) < 0.02

    def test_tvd_rejects_unusable_quasi(self):
        with pytest.raises(AnalysisError):
            total_variation_distance({"0": -1.0}, {"0": 1})

    def test_hellinger_symmetric_mixed_inputs(self):
        quasi = QuasiDistribution({"0": 0.6, "1": 0.4})
        counts = Counts({"0": 3, "1": 7})
        assert hellinger_fidelity(quasi, counts) == pytest.approx(
            hellinger_fidelity(counts, quasi)
        )
