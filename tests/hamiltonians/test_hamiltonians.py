"""Tests for the TFIM, the SK model and Trotterisation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit
from repro.exceptions import BenchmarkError
from repro.hamiltonians import (
    SKModel,
    TimeDependentTFIM,
    TransverseFieldIsing,
    tfim_exact_ground_energy,
    tfim_free_fermion_ground_energy,
    tfim_hamiltonian,
    trotter_circuit,
)
from repro.simulation import final_statevector


class TestTFIM:
    def test_needs_two_spins(self):
        with pytest.raises(BenchmarkError):
            TransverseFieldIsing(1)

    def test_term_count_open_chain(self):
        model = TransverseFieldIsing(4)
        assert len(model.hamiltonian()) == 3 + 4
        assert len(model.zz_terms()) == 3
        assert len(model.x_terms()) == 4

    def test_periodic_adds_one_bond(self):
        assert len(TransverseFieldIsing(4, periodic=True).bonds()) == 4

    def test_exact_ground_energy_two_spins(self):
        # H = -Z0 Z1 - X0 - X1 has ground energy -(1 + sqrt(2)) ... check numerically.
        energy = tfim_exact_ground_energy(2, coupling=1.0, field=1.0)
        matrix = tfim_hamiltonian(2).matrix(2)
        assert energy == pytest.approx(float(np.linalg.eigvalsh(matrix)[0]))

    def test_ground_energy_decreases_with_size(self):
        e4 = tfim_exact_ground_energy(4)
        e6 = tfim_exact_ground_energy(6)
        assert e6 < e4

    def test_exact_diagonalisation_limit(self):
        with pytest.raises(BenchmarkError):
            tfim_exact_ground_energy(15)

    def test_free_fermion_matches_exact_for_periodic_chain(self):
        for n in (4, 6, 8):
            exact = tfim_exact_ground_energy(n, periodic=True)
            analytic = tfim_free_fermion_ground_energy(n)
            assert analytic == pytest.approx(exact, rel=1e-6)

    def test_free_fermion_scales_to_large_systems(self):
        energy = tfim_free_fermion_ground_energy(1000)
        assert energy / 1000 == pytest.approx(-4 / math.pi, rel=1e-3)


class TestSKModel:
    def test_random_instance_weights_are_pm_one(self):
        model = SKModel.random(5, seed=0)
        assert len(model.weights) == 10
        assert all(w in (-1.0, 1.0) for _pair, w in model.weights)

    def test_reproducible(self):
        assert SKModel.random(4, seed=3).weights == SKModel.random(4, seed=3).weights

    def test_energy_and_cut_are_consistent(self):
        model = SKModel.random(4, seed=1)
        total = sum(w for _pair, w in model.weights)
        bits = "0101"
        # energy = sum w * s_i s_j with s = +1/-1; cut counts crossing edges.
        energy = model.energy(bits)
        cut = model.cut_value(bits)
        uncut = total - cut
        assert energy == pytest.approx(uncut - cut)

    def test_brute_force_minimum_is_lower_bound(self):
        model = SKModel.random(5, seed=2)
        best_energy, best_bits = model.brute_force_minimum()
        rng = np.random.default_rng(0)
        for _ in range(20):
            bits = "".join(rng.choice(["0", "1"], size=5))
            assert model.energy(bits) >= best_energy - 1e-9

    def test_hamiltonian_matches_classical_energy(self):
        model = SKModel.random(3, seed=4)
        matrix = model.hamiltonian().matrix(3)
        diagonal = np.real(np.diag(matrix))
        for index in range(8):
            bits = "".join("1" if (index >> q) & 1 else "0" for q in range(3))
            assert diagonal[index] == pytest.approx(model.energy(bits))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(BenchmarkError):
            SKModel.random(3, seed=0).energy("01")


class TestTrotter:
    def test_invalid_parameters_rejected(self):
        model = TimeDependentTFIM(3)
        with pytest.raises(BenchmarkError):
            trotter_circuit(model, time_step=0.1, steps=0)
        with pytest.raises(BenchmarkError):
            trotter_circuit(model, time_step=-0.1, steps=1)

    def test_gate_counts_scale_with_steps(self):
        model = TimeDependentTFIM(4)
        one = trotter_circuit(model, 0.1, steps=1, initial_hadamard=False)
        three = trotter_circuit(model, 0.1, steps=3, initial_hadamard=False)
        assert three.num_gates() == 3 * one.num_gates()

    def test_first_order_trotter_converges(self):
        """Finer Trotter steps approach the exact propagator for a static field."""
        spins = 3
        total_time = 0.6
        model = TimeDependentTFIM(
            spins, coupling=0.7, drive_amplitude=0.9, drive_frequency=0.0
        )
        hamiltonian = tfim_hamiltonian(spins, coupling=0.7, field=0.9).matrix(spins)
        from scipy.linalg import expm

        exact = expm(-1j * hamiltonian * total_time)[:, 0]

        def trotter_state(steps):
            circuit = trotter_circuit(model, total_time / steps, steps, initial_hadamard=False)
            return final_statevector(circuit)

        coarse = abs(np.vdot(exact, trotter_state(2))) ** 2
        fine = abs(np.vdot(exact, trotter_state(16))) ** 2
        assert fine > coarse - 1e-9
        assert fine > 0.999

    def test_field_at_follows_cosine(self):
        model = TimeDependentTFIM(3, drive_amplitude=2.0, drive_frequency=math.pi)
        assert model.field_at(0.0) == pytest.approx(2.0)
        assert model.field_at(1.0) == pytest.approx(-2.0)
