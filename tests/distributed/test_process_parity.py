"""Thread-vs-process score parity and store integration of the process path."""

import pytest

import repro.benchmarks  # noqa: F401 - registers benchmark families
from repro.distributed import ProcessShardExecutor
from repro.exceptions import DistributedError
from repro.execution import StatevectorBackend
from repro.store import ResultStore
from repro.suite import Scenario, Sweep, run_scenario
from repro.suite.results import SuiteResult

SCENARIO = Scenario(
    name="parity",
    sweeps=(Sweep.of("ghz", num_qubits=(2, 3, 4)),),
    devices=("IonQ-11Q", "IBM-Casablanca-7Q"),
    mitigations=("raw", "readout"),
)
KNOBS = dict(shots=40, repetitions=1, seed=11, trajectories=5)


@pytest.fixture(scope="module")
def thread_result():
    return run_scenario(SCENARIO, **KNOBS)


@pytest.fixture(scope="module")
def process_result():
    return run_scenario(SCENARIO, executor="process", processes=2, **KNOBS)


class TestProcessParity:
    def test_scores_bit_identical_to_thread_path(self, thread_result, process_result):
        assert process_result.scores() == thread_result.scores()

    def test_outcome_payloads_identical(self, thread_result, process_result):
        thread_units = {o.key: o.unit_payload() for o in thread_result.outcomes()}
        process_units = {o.key: o.unit_payload() for o in process_result.outcomes()}
        assert process_units == thread_units

    def test_config_binding_matches(self, thread_result, process_result):
        assert process_result.config == thread_result.config

    def test_process_result_reports_worker_and_scheduler_stats(
        self, thread_result, process_result
    ):
        keys = process_result.engine_stats
        workers = [k for k in keys if k.startswith("worker-pid-")]
        assert workers, keys
        # Backend dispatches (runs + calibration jobs) must add up to the
        # thread path's total regardless of how leases were distributed.
        thread_total = sum(
            stats.get("executions", 0) for stats in thread_result.engine_stats.values()
        )
        assert sum(keys[w].get("executions", 0) for w in workers) == thread_total
        assert keys["scheduler"]["tasks_done"] == keys["scheduler"]["tasks"]

    def test_merge_of_thread_and_process_results_is_conflict_free(
        self, thread_result, process_result
    ):
        merged = SuiteResult(scenario=SCENARIO.name)
        merged.merge(thread_result)
        merged.merge(process_result)  # identical unit payloads: benign
        assert len(merged) == len(thread_result)


class TestProcessStoreIntegration:
    def test_warm_store_answers_without_shipping_to_workers(self, tmp_path):
        path = tmp_path / "results.sqlite"
        with ResultStore(path) as store:
            warm = run_scenario(SCENARIO, store=store, **KNOBS)
            result = run_scenario(
                SCENARIO, store=store, executor="process", processes=2, **KNOBS
            )
            assert result.scores() == warm.scores()
            stats = result.engine_stats["scheduler"]
            assert stats["prewarmed_units"] == len(warm.outcomes()) - len(warm.skipped())
            # Skips are re-derived by workers; executed units never shipped.
            assert not any(k.startswith("worker-") and v.get("executions")
                           for k, v in result.engine_stats.items())

    def test_workers_write_runs_back_to_a_file_store(self, tmp_path):
        path = tmp_path / "cold.sqlite"
        with ResultStore(path) as store:
            result = run_scenario(
                SCENARIO, store=store, executor="process", processes=2, **KNOBS
            )
            rows = store.query(kind="run", limit=100)
            assert len(rows) == len(result.runs())

    def test_memory_store_stays_parent_side_but_ends_warm(self):
        with ResultStore(":memory:") as store:
            first = run_scenario(
                SCENARIO, store=store, executor="process", processes=2, **KNOBS
            )
            again = run_scenario(
                SCENARIO, store=store, executor="process", processes=2, **KNOBS
            )
            assert again.scores() == first.scores()
            assert again.engine_stats["scheduler"]["prewarmed_units"] == len(first.runs())


class TestProcessPathValidation:
    def test_backend_instances_are_rejected(self):
        with pytest.raises(DistributedError, match="backend instances"):
            run_scenario(
                SCENARIO, executor="process", backend=StatevectorBackend(), **KNOBS
            )

    def test_unknown_executor_string_is_rejected(self):
        with pytest.raises(DistributedError, match="unknown executor"):
            run_scenario(SCENARIO, executor="carrier-pigeon", **KNOBS)

    def test_resume_partial_skips_completed_units(self, thread_result):
        resumed = run_scenario(
            SCENARIO, executor="process", processes=2, partial=thread_result, **KNOBS
        )
        assert resumed is thread_result
        # Nothing was pending: no worker entries were added.
        assert not any(k.startswith("worker-") for k in resumed.engine_stats)

    def test_custom_executor_instance_is_used_and_not_closed(self):
        with ProcessShardExecutor(processes=2) as executor:
            result = run_scenario(SCENARIO, executor=executor, **KNOBS)
            assert result.scores()
            # run_scenario must not close a caller-owned executor.
            lease_probe = run_scenario(SCENARIO, executor=executor, seed=12, **{
                k: v for k, v in KNOBS.items() if k != "seed"
            })
            assert lease_probe.scores()
