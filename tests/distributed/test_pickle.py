"""Pickle round-trips for everything that crosses the process boundary.

The ``spawn`` start method pickles worker arguments with no inherited state,
so every object shipped to a worker — tasks, leases, scenarios — and every
config a worker rebuilds from — noise models, mitigation specs — must
survive ``pickle`` exactly.
"""

import pickle

import pytest

import repro.benchmarks  # noqa: F401 - registers benchmark families
from repro.devices import get_device
from repro.distributed import plan_scenario
from repro.mitigation import resolve_mitigator
from repro.suite import Scenario, Sweep
from repro.suite.sweep import EngineConfig

SCENARIO = Scenario(
    name="pickle-test",
    sweeps=(Sweep.of("ghz", num_qubits=(2, 3)),),
    devices=("IonQ-11Q", "IBM-Casablanca-7Q"),
    mitigations=("raw", "readout"),
)


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


class TestPickleRoundTrips:
    def test_scenario_roundtrips_and_expands_identically(self):
        restored = roundtrip(SCENARIO)
        assert restored == SCENARIO
        assert [u.key() for u in restored.expand()] == [u.key() for u in SCENARIO.expand()]

    def test_engine_config_roundtrips(self):
        config = EngineConfig(device="IonQ-11Q", backend="statevector", optimization_level=2)
        assert roundtrip(config) == config
        assert roundtrip(config).key() == config.key()

    @pytest.mark.parametrize("device", ["IonQ-11Q", "IBM-Casablanca-7Q", "AQT-4Q"])
    def test_noise_model_roundtrips_with_fingerprint(self, device):
        model = get_device(device).noise_model()
        restored = roundtrip(model)
        assert restored.fingerprint() == model.fingerprint()

    @pytest.mark.parametrize("name", ["readout", "full_readout", "zne", "dd", "dd_xx"])
    def test_resolved_mitigators_roundtrip(self, name):
        mitigator = resolve_mitigator(name)
        restored = roundtrip(mitigator)
        assert restored.name == mitigator.name
        assert type(restored) is type(mitigator)

    def test_plan_lease_and_result_roundtrip(self):
        plan = plan_scenario(SCENARIO, shots=77, seed=3, chunk_size=2)
        restored = roundtrip(plan)
        assert restored == plan
        assert [t.unit_keys() for t in restored.tasks] == [t.unit_keys() for t in plan.tasks]

        from repro.distributed.plan import Lease, LeaseResult

        lease = Lease(lease_id=5, task=plan.tasks[0], attempt=2, issued_at=1.0, deadline=9.0)
        assert roundtrip(lease) == lease
        result = LeaseResult(
            lease_id=5, task_id="task-0", worker="pid-1",
            outcomes=[{"key": "k", "status": "ok"}], engine_stats={"hits": 1}, seconds=0.5,
        )
        assert roundtrip(result).outcomes == result.outcomes

    def test_task_units_rebuild_their_specs(self):
        plan = plan_scenario(SCENARIO, chunk_size=100)
        unit = roundtrip(plan.tasks[0]).units[0]
        from repro.suite.spec import BenchmarkSpec

        benchmark = BenchmarkSpec.from_dict(unit.spec_dict()).build()
        assert benchmark.circuit().num_qubits >= 2


class TestSpawnSafety:
    def test_lease_executes_under_spawn_start_method(self, tmp_path):
        """One real spawn worker: nothing may depend on forked parent state."""
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        from repro.distributed.plan import Lease
        from repro.distributed.worker import execute_lease, initialize_worker

        plan = plan_scenario(
            SCENARIO, devices=["IonQ-11Q"], shots=40, repetitions=1,
            trajectories=5, chunk_size=1,
        )
        lease = Lease(lease_id=1, task=plan.tasks[0])
        with ProcessPoolExecutor(
            max_workers=1,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=initialize_worker,
            initargs=(None, None),
        ) as pool:
            result = pool.submit(execute_lease, lease).result(timeout=300)
        assert [o["key"] for o in result.outcomes] == list(lease.task.unit_keys())
        assert result.outcomes[0]["status"] == "ok"
        assert result.worker.startswith("pid-")
