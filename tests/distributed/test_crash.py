"""Crash containment: a SIGKILLed worker mid-shard must not change results.

The executor's ``crash_marker`` hook arms the workers to SIGKILL themselves
mid-lease exactly once (the first worker to finish a unit writes the marker
file and dies).  The scheduler must observe the poisoned pool, rebuild it,
re-lease the interrupted tasks and finish with a result bit-identical to an
uninterrupted run.
"""

import pytest

import repro.benchmarks  # noqa: F401 - registers benchmark families
from repro.distributed import ProcessShardExecutor
from repro.suite import Scenario, Sweep, run_scenario

SCENARIO = Scenario(
    name="crash",
    sweeps=(Sweep.of("ghz", num_qubits=(2, 3, 4, 5)),),
    devices=("IonQ-11Q",),
)
KNOBS = dict(shots=40, repetitions=1, seed=21, trajectories=5)


class TestWorkerCrashContainment:
    def test_sigkilled_worker_is_contained_and_result_identical(self, tmp_path):
        baseline = run_scenario(SCENARIO, **KNOBS)
        marker = tmp_path / "crash-once"
        with ProcessShardExecutor(processes=2, crash_marker=str(marker)) as executor:
            crashed = run_scenario(SCENARIO, executor=executor, **KNOBS)
        assert marker.exists(), "the crash hook never fired"
        assert crashed.scores() == baseline.scores()
        scheduler = crashed.engine_stats["scheduler"]
        assert scheduler["retries"] >= 1
        assert scheduler["pool_rebuilds"] >= 1
        assert scheduler["tasks_done"] == scheduler["tasks"]

    def test_crash_with_store_keeps_store_consistent(self, tmp_path):
        from repro.store import ResultStore

        marker = tmp_path / "crash-once-store"
        path = tmp_path / "results.sqlite"
        baseline = run_scenario(SCENARIO, **KNOBS)
        with ResultStore(path) as store:
            with ProcessShardExecutor(
                processes=2, store_path=store.path, crash_marker=str(marker)
            ) as executor:
                crashed = run_scenario(SCENARIO, executor=executor, store=store, **KNOBS)
            assert crashed.scores() == baseline.scores()
            assert len(store.query(kind="run", limit=100)) == len(baseline.runs())


class TestExecutorLifecycle:
    def test_close_is_idempotent_and_submit_after_close_raises(self):
        from repro.distributed.plan import Lease, ShardTask, UnitPlan
        from repro.exceptions import DistributedError
        from repro.suite.sweep import EngineConfig

        executor = ProcessShardExecutor(processes=1)
        executor.close()
        executor.close()
        task = ShardTask(
            task_id="t", scenario="s", engine=EngineConfig(device="IonQ-11Q"),
            mitigation="raw", units=(UnitPlan("k", (("family", "ghz"), ("params", ())), 0),),
        )
        with pytest.raises(DistributedError, match="closed"):
            executor.submit(Lease(lease_id=1, task=task))

    def test_rejects_zero_processes(self):
        from repro.exceptions import DistributedError

        with pytest.raises(DistributedError):
            ProcessShardExecutor(processes=0)

    def test_recover_counts_rebuilds(self):
        executor = ProcessShardExecutor(processes=1)
        try:
            executor.recover()
            assert executor.rebuilds == 1
        finally:
            executor.close()
