"""Tests for the leased work queue: dedupe, stragglers, retries, containment.

These tests drive :class:`WorkQueue` directly with a fake clock and
:func:`run_leases` with stub executors, so every re-lease/retry path is
exercised deterministically without real worker processes.
"""

from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.distributed import WorkQueue, run_leases
from repro.distributed.plan import LeaseResult, ShardPlan, ShardTask, UnitPlan
from repro.exceptions import DistributedError
from repro.suite.sweep import EngineConfig

ENGINE = EngineConfig(device="IonQ-11Q")


def make_task(task_id: str, unit_keys) -> ShardTask:
    units = tuple(
        UnitPlan(key=key, spec=(("family", "ghz"), ("params", (("num_qubits", 2),))), index=i)
        for i, key in enumerate(unit_keys)
    )
    return ShardTask(task_id=task_id, scenario="s", engine=ENGINE, mitigation="raw", units=units)


def make_result(lease, worker="w1") -> LeaseResult:
    return LeaseResult(
        lease_id=lease.lease_id,
        task_id=lease.task.task_id,
        worker=worker,
        outcomes=[{"key": key, "status": "ok"} for key in lease.task.unit_keys()],
        engine_stats={"executions": len(lease.task.units), "entries": 3},
        seconds=0.1,
    )


class TestWorkQueue:
    def test_leases_tasks_in_order_then_drains(self):
        queue = WorkQueue([make_task("a", ["u1"]), make_task("b", ["u2"])])
        first, second = queue.next_lease(now=0.0), queue.next_lease(now=0.0)
        assert (first.task.task_id, second.task.task_id) == ("a", "b")
        assert queue.next_lease(now=0.0) is None
        assert not queue.done
        queue.complete(first, make_result(first))
        queue.complete(second, make_result(second))
        assert queue.done

    def test_double_completion_dedupes_per_unit(self):
        queue = WorkQueue([make_task("a", ["u1", "u2"])], lease_timeout=1.0)
        first = queue.next_lease(now=0.0)
        queue.release_stragglers(now=5.0)  # straggler: same task leasable again
        second = queue.next_lease(now=5.0)
        assert second.task.task_id == "a"
        assert second.attempt == 2
        fresh = queue.complete(second, make_result(second))
        assert [o["key"] for o in fresh] == ["u1", "u2"]
        # The original straggler finishes later: everything is a duplicate.
        assert queue.complete(first, make_result(first)) == []
        assert queue.duplicate_units == 2
        assert queue.done

    def test_straggler_release_respects_attempt_budget(self):
        queue = WorkQueue([make_task("a", ["u1"])], lease_timeout=1.0, max_attempts=2)
        queue.next_lease(now=0.0)
        assert queue.release_stragglers(now=2.0) == ["a"]
        queue.next_lease(now=2.0)
        # Two attempts consumed: the deadline passing again releases nothing.
        assert queue.release_stragglers(now=10.0) == []

    def test_no_timeout_means_no_straggler_release(self):
        queue = WorkQueue([make_task("a", ["u1"])])
        queue.next_lease(now=0.0)
        assert queue.release_stragglers(now=1e9) == []

    def test_failed_lease_requeues_until_attempts_exhausted(self):
        queue = WorkQueue([make_task("a", ["u1"])], max_attempts=2)
        lease = queue.next_lease(now=0.0)
        assert queue.fail(lease, RuntimeError("crash")) is True
        retry = queue.next_lease(now=0.0)
        assert retry.attempt == 2
        with pytest.raises(DistributedError, match="failed after 2 attempts"):
            queue.fail(retry, RuntimeError("crash again"))

    def test_failure_of_stale_lease_is_ignored(self):
        queue = WorkQueue([make_task("a", ["u1"])], lease_timeout=1.0)
        first = queue.next_lease(now=0.0)
        queue.release_stragglers(now=2.0)
        second = queue.next_lease(now=2.0)
        queue.complete(second, make_result(second))
        # The superseded lease's crash must not resurrect the task.
        assert queue.fail(first, RuntimeError("late crash")) is False
        assert queue.done

    def test_progress_counters(self):
        queue = WorkQueue([make_task("a", ["u1", "u2"]), make_task("b", ["u3"])])
        lease = queue.next_lease(now=0.0)
        queue.complete(lease, make_result(lease))
        progress = queue.progress()
        assert progress["tasks"] == 2 and progress["tasks_done"] == 1
        assert progress["units"] == 3 and progress["units_done"] == 2
        assert progress["leases_issued"] == 1

    def test_rejects_zero_attempts(self):
        with pytest.raises(DistributedError):
            WorkQueue([], max_attempts=0)


class StubExecutor:
    """Synchronous in-process executor with scriptable failures."""

    def __init__(self, capacity=2, fail_first_for=()):
        self.capacity = capacity
        self.rebuilds = 0
        self.seen = []
        self._remaining_failures = dict(fail_first_for)

    def submit(self, lease) -> Future:
        self.seen.append((lease.task.task_id, lease.attempt))
        future: Future = Future()
        failures = self._remaining_failures.get(lease.task.task_id, 0)
        if failures > 0:
            self._remaining_failures[lease.task.task_id] = failures - 1
            future.set_exception(BrokenProcessPool("worker died"))
        else:
            future.set_result(make_result(lease))
        return future


class TestRunLeases:
    def test_runs_every_task_and_aggregates_worker_stats(self):
        plan = ShardPlan("s", (make_task("a", ["u1", "u2"]), make_task("b", ["u3"])))
        recorded = []
        stats = run_leases(
            plan, StubExecutor(), lambda lease, fresh: recorded.extend(fresh)
        )
        assert sorted(o["key"] for o in recorded) == ["u1", "u2", "u3"]
        worker = stats["workers"]["w1"]
        assert worker["executions"] == 3  # counters sum across leases
        assert worker["entries"] == 3  # gauges take the max
        assert worker["leases"] == 2
        assert stats["scheduler"]["tasks_done"] == 2

    def test_crashed_lease_is_retried_and_result_complete(self):
        plan = ShardPlan("s", (make_task("a", ["u1"]), make_task("b", ["u2"])))
        executor = StubExecutor(fail_first_for={"a": 1})
        recorded = []
        stats = run_leases(
            plan, executor, lambda lease, fresh: recorded.extend(fresh), max_attempts=3
        )
        assert sorted(o["key"] for o in recorded) == ["u1", "u2"]
        assert stats["scheduler"]["retries"] == 1
        assert ("a", 2) in executor.seen

    def test_exhausted_attempts_raise(self):
        plan = ShardPlan("s", (make_task("a", ["u1"]),))
        with pytest.raises(DistributedError, match="failed after 2 attempts"):
            run_leases(
                plan,
                StubExecutor(fail_first_for={"a": 99}),
                lambda lease, fresh: None,
                max_attempts=2,
            )

    def test_empty_plan_finishes_immediately(self):
        stats = run_leases(ShardPlan("s", ()), StubExecutor(), lambda lease, fresh: None)
        assert stats["scheduler"]["tasks"] == 0
        assert stats["workers"] == {}
