"""Tests for the picklable shard-plan model and scenario planning."""

import pytest

import repro.benchmarks  # noqa: F401 - registers benchmark families
from repro.distributed import plan_scenario
from repro.distributed.plan import TASKS_PER_WORKER
from repro.exceptions import DistributedError
from repro.mitigation import ReadoutMitigator
from repro.suite import Scenario, Sweep

SCENARIO = Scenario(
    name="plan-test",
    sweeps=(Sweep.of("ghz", num_qubits=(2, 3, 4, 5, 6, 7)),),
    devices=("IonQ-11Q",),
)


class TestPlanScenario:
    def test_plan_covers_every_pending_unit_exactly_once(self):
        plan = plan_scenario(SCENARIO, processes=2)
        keys = [key for task in plan.tasks for key in task.unit_keys()]
        expected = [unit.key() for unit in SCENARIO.expand()]
        assert sorted(keys) == sorted(expected)
        assert len(keys) == len(set(keys))
        assert plan.unit_count == len(expected)

    def test_completed_units_never_ship(self):
        expected = [unit.key() for unit in SCENARIO.expand()]
        completed = frozenset(expected[:4])
        plan = plan_scenario(SCENARIO, completed=completed)
        keys = {key for task in plan.tasks for key in task.unit_keys()}
        assert keys == set(expected[4:])

    def test_fully_completed_scenario_plans_empty(self):
        completed = frozenset(unit.key() for unit in SCENARIO.expand())
        plan = plan_scenario(SCENARIO, completed=completed)
        assert len(plan) == 0
        assert plan.unit_count == 0

    def test_auto_chunking_targets_tasks_per_worker(self):
        # 6 units over 2 workers: ceil(6 / (2*TASKS_PER_WORKER)) = 1 unit/task.
        plan = plan_scenario(SCENARIO, processes=2)
        assert len(plan) == min(6, 2 * TASKS_PER_WORKER)
        assert all(len(task.units) >= 1 for task in plan.tasks)

    def test_explicit_chunk_size(self):
        plan = plan_scenario(SCENARIO, chunk_size=4)
        assert [len(task.units) for task in plan.tasks] == [4, 2]
        with pytest.raises(DistributedError):
            plan_scenario(SCENARIO, chunk_size=0)

    def test_task_ids_are_unique_and_stable(self):
        first = plan_scenario(SCENARIO, chunk_size=2)
        second = plan_scenario(SCENARIO, chunk_size=2)
        ids = [task.task_id for task in first.tasks]
        assert len(ids) == len(set(ids))
        assert ids == [task.task_id for task in second.tasks]

    def test_units_carry_spec_dict_and_canonical_index(self):
        plan = plan_scenario(SCENARIO, chunk_size=100)
        unit = plan.tasks[0].units[0]
        assert unit.spec_dict() == {"family": "ghz", "params": {"num_qubits": 2}}
        indices = [u.index for task in plan.tasks for u in task.units]
        assert indices == sorted(indices)

    def test_execution_knobs_are_stamped_on_every_task(self):
        plan = plan_scenario(
            SCENARIO, shots=123, repetitions=2, seed=9, trajectories=7,
            backend_override="statevector", store_path="/tmp/x.sqlite",
        )
        for task in plan.tasks:
            assert (task.shots, task.repetitions, task.seed) == (123, 2, 9)
            assert task.trajectories == 7
            assert task.backend_override == "statevector"
            assert task.store_path == "/tmp/x.sqlite"
            assert task.scenario == "plan-test"

    def test_mitigator_instances_are_rejected(self):
        scenario = Scenario(
            name="bad",
            sweeps=(Sweep.of("ghz", num_qubits=(2,)),),
            devices=("IonQ-11Q",),
            mitigations=(ReadoutMitigator(),),
        )
        with pytest.raises(DistributedError, match="Mitigator instances"):
            plan_scenario(scenario)

    def test_mitigation_names_produce_one_group_per_technique(self):
        scenario = Scenario(
            name="mit",
            sweeps=(Sweep.of("ghz", num_qubits=(2, 3)),),
            devices=("IonQ-11Q",),
            mitigations=("raw", "readout"),
        )
        plan = plan_scenario(scenario, chunk_size=100)
        assert sorted(task.mitigation for task in plan.tasks) == ["raw", "readout"]
