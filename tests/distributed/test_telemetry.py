"""Cross-process telemetry: one merged trace, stable counts, crash safety.

The tentpole invariant of the distributed telemetry path: a multi-process
sweep renders as ONE coherent trace — worker spans ship inside each
``LeaseResult``, the scheduler adopts them under its own ``scheduler.lease``
spans, and worker metric deltas fold into the parent registry.
"""

from collections import Counter

import pytest

import repro.benchmarks  # noqa: F401 - registers benchmark families
from repro.distributed import ProcessShardExecutor
from repro.suite import Scenario, Sweep, run_scenario
from repro.telemetry import configure_tracing, get_metrics, get_tracer

SCENARIO = Scenario(
    name="traced",
    sweeps=(Sweep.of("ghz", num_qubits=(2, 3, 4, 5)),),
    devices=("IonQ-11Q",),
)
KNOBS = dict(shots=40, repetitions=1, seed=21, trajectories=5)


@pytest.fixture
def traced():
    tracer = get_tracer()
    previous = (tracer.enabled, tracer.id_prefix)
    configure_tracing(enabled=True, seed=5)
    yield tracer
    tracer.clear()
    tracer.enabled, tracer.id_prefix = previous


def _run(tracer, **extra):
    tracer.reseed(5)
    run_scenario(SCENARIO, executor=extra.pop("executor", "process"),
                 processes=2, **KNOBS, **extra)
    return tracer.finished()


class TestMergedTrace:
    def test_two_process_run_is_one_coherent_trace(self, traced):
        spans = _run(traced)
        by_id = {span.span_id: span for span in spans}
        names = Counter(span.name for span in spans)

        # one trace, no dangling parent links
        assert len({span.trace_id for span in spans}) == 1
        assert all(span.parent_id in by_id
                   for span in spans if span.parent_id is not None)

        # the scheduler hierarchy: run_scenario > run_leases > lease > worker
        assert names["suite.run_scenario"] == 1
        assert names["scheduler.run_leases"] == 1
        (sched,) = [s for s in spans if s.name == "scheduler.run_leases"]
        leases = [s for s in spans if s.name == "scheduler.lease"]
        assert leases and all(s.parent_id == sched.span_id for s in leases)
        workers = [s for s in spans if s.name == "worker.lease"]
        assert workers
        assert all(by_id[s.parent_id].name == "scheduler.lease" for s in workers)

        # worker-side engine/pass/kernel spans rode along
        assert names["engine.benchmark"] == 4
        assert all(by_id[s.parent_id].name == "worker.lease"
                   for s in spans if s.name == "engine.benchmark")
        assert names["transpiler.pass"] > 0
        assert names["simulation.trajectories"] > 0

        # worker spans genuinely came from other processes
        parent_process = sched.process
        assert {s.process for s in workers} - {parent_process}

    def test_worker_metric_deltas_merge_into_parent_registry(self, traced):
        before = get_metrics().snapshot()

        def executions(snapshot):
            total = 0.0
            for row in snapshot.get("repro_engine_executions_total", {}).get("series", []):
                if "/" in row["labels"].get("instance", ""):  # worker-qualified
                    total += row["value"]
            return total

        baseline = executions(before)
        _run(traced)
        assert executions(get_metrics().snapshot()) >= baseline + 4

    def test_span_name_counts_are_stable_at_fixed_seed(self, traced):
        first = Counter(span.name for span in _run(traced))
        traced.clear()
        second = Counter(span.name for span in _run(traced))
        assert first == second


class TestCrashSafety:
    def test_sigkilled_worker_loses_no_adopted_telemetry(self, traced, tmp_path):
        marker = tmp_path / "crash-once"
        traced.reseed(5)
        with ProcessShardExecutor(processes=2, crash_marker=str(marker)) as executor:
            result = run_scenario(SCENARIO, executor=executor, **KNOBS)
        assert marker.exists(), "the crash hook never fired"
        assert len(result.scores()) == 4
        spans = traced.finished()
        benchmarks = [s for s in spans if s.name == "engine.benchmark"]
        # every unit's execution is traced despite the mid-sweep SIGKILL:
        # the crashed lease shipped nothing, its re-lease shipped everything
        covered = {s.attributes["benchmark"] for s in benchmarks}
        assert len(covered) == 4
        assert len({span.trace_id for span in spans}) == 1
