"""Cross-module integration tests: the paper's qualitative claims end to end."""

import numpy as np
import pytest

from repro.benchmarks import (
    BitCodeBenchmark,
    GHZBenchmark,
    MerminBellBenchmark,
    VanillaQAOABenchmark,
)
from repro.circuits import Circuit
from repro.devices import get_device
from repro.experiments import run_benchmark_on_device
from repro.simulation import StatevectorSimulator
from repro.transpiler import transpile


class TestQasmToExecutionRoundTrip:
    def test_benchmark_circuits_survive_qasm_round_trip_and_compilation(self):
        """Benchmarks are specified at the OpenQASM level (design principle 3)."""
        benchmark = GHZBenchmark(4)
        qasm = benchmark.circuits()[0].to_qasm()
        circuit = Circuit.from_qasm(qasm)
        device = get_device("IBM-Casablanca-7Q")
        compact, _physical = transpile(circuit, device).compact()
        counts = StatevectorSimulator(seed=0).run(compact, shots=300)
        assert benchmark.score([counts]) > 0.97


class TestPaperQualitativeClaims:
    def test_scores_degrade_with_benchmark_size(self):
        """Fig. 2: bigger instances score lower on the same noisy device."""
        device = get_device("IBM-Guadalupe-16Q")
        small = run_benchmark_on_device(
            GHZBenchmark(3), device, shots=300, repetitions=2, trajectories=40, seed=7
        )
        large = run_benchmark_on_device(
            GHZBenchmark(11), device, shots=300, repetitions=2, trajectories=40, seed=7
        )
        assert large.mean_score < small.mean_score

    def test_trapped_ion_wins_communication_heavy_benchmark(self):
        """Sec. VI: all-to-all connectivity compensates worse 2q fidelity on
        the Vanilla QAOA benchmark, because the superconducting device pays a
        large SWAP overhead."""
        benchmark = VanillaQAOABenchmark(5, seed=3)
        ion = run_benchmark_on_device(
            benchmark, get_device("IonQ-11Q"), shots=250, repetitions=2, trajectories=40, seed=11
        )
        superconducting = run_benchmark_on_device(
            benchmark,
            get_device("IBM-Toronto-27Q"),
            shots=250,
            repetitions=2,
            trajectories=40,
            seed=11,
        )
        # The superconducting compilation needs SWAPs, the trapped-ion one does not.
        assert superconducting.swap_count > 0
        assert ion.swap_count == 0
        assert ion.mean_score > superconducting.mean_score

    def test_error_correction_benchmarks_hit_superconducting_harder(self):
        """Fig. 2c-d / Sec. VI: mid-circuit measurement + reset is the dominant
        cost on superconducting devices (long readout relative to T1/T2), while
        the trapped-ion model's huge coherence times tolerate the idling."""
        benchmark = BitCodeBenchmark(3, 3)
        superconducting = run_benchmark_on_device(
            benchmark,
            get_device("IBM-Toronto-27Q"),
            shots=200,
            repetitions=2,
            trajectories=50,
            seed=5,
        )
        ion = run_benchmark_on_device(
            benchmark, get_device("IonQ-11Q"), shots=200, repetitions=2, trajectories=50, seed=5
        )
        assert ion.mean_score > superconducting.mean_score

    def test_mermin_bell_exceeds_classical_limit_on_good_device(self):
        """Fig. 2b: hardware with low enough error beats the local hidden-variable bound."""
        benchmark = MerminBellBenchmark(3)
        run = run_benchmark_on_device(
            benchmark,
            get_device("IBM-Lagos-7Q"),
            shots=300,
            repetitions=1,
            trajectories=60,
            seed=9,
        )
        assert run.mean_score > benchmark.classical_limit_score()

    def test_feature_score_correlation_has_signal(self):
        """Fig. 3: on a noisy device, scores correlate with circuit-size features."""
        from repro.analysis import r_squared

        device = get_device("IBM-Montreal-27Q")
        runs = [
            run_benchmark_on_device(
                GHZBenchmark(n), device, shots=300, repetitions=2, trajectories=75, seed=n
            )
            for n in (3, 5, 7, 9, 11)
        ]
        sizes = [run.typical["num_two_qubit_gates"] for run in runs]
        scores = [run.mean_score for run in runs]
        assert r_squared(sizes, scores) > 0.2
        assert scores[-1] < scores[0]
