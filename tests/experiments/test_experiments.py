"""Tests for the experiment runner and the table/figure drivers (reduced scale)."""

import numpy as np
import pytest

from repro.benchmarks import BitCodeBenchmark, GHZBenchmark, VanillaQAOABenchmark
from repro.devices import get_device
from repro.exceptions import DeviceError
from repro.experiments import (
    ALL_REGRESSION_FEATURES,
    PAPER_TABLE1,
    figure1_benchmarks,
    format_heatmap,
    format_table,
    render_figure1,
    render_table2,
    reproduce_figure1,
    reproduce_figure2,
    reproduce_figure3,
    reproduce_figure4,
    reproduce_table2,
    run_benchmark_on_device,
)
from repro.experiments.figure2 import render_figure2
from repro.experiments.figure4 import render_figure4


class TestRunner:
    def test_ghz_run_produces_scores_and_metadata(self):
        run = run_benchmark_on_device(
            GHZBenchmark(3),
            get_device("IBM-Casablanca-7Q"),
            shots=120,
            repetitions=2,
            trajectories=20,
        )
        assert len(run.scores) == 2
        assert 0.0 <= run.mean_score <= 1.0
        assert run.std_score >= 0.0
        assert run.features["critical_depth"] == pytest.approx(1.0)
        assert run.typical["num_qubits"] == 3
        record = run.record()
        assert record["device"] == "IBM-Casablanca-7Q"
        assert "entanglement_ratio" in record

    def test_too_large_benchmark_raises(self):
        with pytest.raises(DeviceError):
            run_benchmark_on_device(GHZBenchmark(5), get_device("AQT-4Q"), shots=10)

    def test_noiseless_run_scores_near_one(self):
        run = run_benchmark_on_device(
            GHZBenchmark(3),
            get_device("IonQ-11Q"),
            shots=400,
            repetitions=1,
            noisy=False,
        )
        assert run.mean_score > 0.95

    def test_noise_lowers_score_for_error_correction(self):
        device = get_device("IBM-Guadalupe-16Q")
        noisy = run_benchmark_on_device(
            BitCodeBenchmark(3, 2), device, shots=120, repetitions=1, trajectories=30
        )
        ideal = run_benchmark_on_device(
            BitCodeBenchmark(3, 2), device, shots=120, repetitions=1, noisy=False
        )
        assert noisy.mean_score < ideal.mean_score


class TestTables:
    def test_table2_contains_all_devices(self):
        rows = reproduce_table2()
        assert len(rows) == 9
        assert any(row["machine"] == "IonQ-11Q" for row in rows)
        rendered = render_table2()
        assert "IBM-Montreal-27Q" in rendered

    def test_paper_table1_constants(self):
        assert PAPER_TABLE1["SupermarQ"][0] == pytest.approx(9.0e-3)
        assert PAPER_TABLE1["PPL+2020"][1] == 9

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_heatmap(self):
        text = format_heatmap({"dev": {"f": 0.5}}, ["f"])
        assert "0.50" in text


class TestFigureDrivers:
    def test_figure1_rows(self):
        rows = reproduce_figure1()
        assert len(rows) == 8
        assert len(figure1_benchmarks()) == 8
        assert "ghz" in render_figure1()

    @pytest.fixture(scope="class")
    def small_runs(self):
        return reproduce_figure2(
            devices=["IBM-Casablanca-7Q", "IonQ-11Q"],
            small=True,
            shots=60,
            repetitions=1,
            trajectories=12,
            families=["ghz", "bit_code", "hamiltonian_simulation", "vanilla_qaoa"],
        )

    def test_figure2_reduced_sweep(self, small_runs):
        assert len(small_runs) > 0
        devices = {run.device for run in small_runs}
        assert devices == {"IBM-Casablanca-7Q", "IonQ-11Q"}
        assert all(0.0 <= run.mean_score <= 1.0 for run in small_runs)
        assert "score" in render_figure2(small_runs)

    def test_figure3_heatmap_from_runs(self, small_runs):
        matrix = reproduce_figure3(small_runs)
        assert set(matrix) == {"IBM-Casablanca-7Q", "IonQ-11Q"}
        for row in matrix.values():
            for feature in ALL_REGRESSION_FEATURES:
                assert 0.0 <= row[feature] <= 1.0

    def test_figure3_excluding_error_correction(self, small_runs):
        matrix = reproduce_figure3(small_runs, include_error_correction=False)
        assert set(matrix) == {"IBM-Casablanca-7Q", "IonQ-11Q"}

    def test_figure4_regression(self, small_runs):
        result = reproduce_figure4(small_runs, device="IBM-Casablanca-7Q")
        assert 0.0 <= result.fit_with_ec.r_squared <= 1.0
        assert 0.0 <= result.fit_without_ec.r_squared <= 1.0
        assert "R^2" in render_figure4(result)

    def test_figure4_unknown_device_rejected(self, small_runs):
        with pytest.raises(ValueError):
            reproduce_figure4(small_runs, device="No-Such-Device")
