"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.devices import get_device
from repro.simulation import StatevectorSimulator
from repro.utils import equivalent_up_to_global_phase


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def simulator():
    return StatevectorSimulator(seed=7)


@pytest.fixture
def ibm_device():
    return get_device("IBM-Casablanca-7Q")


@pytest.fixture
def ionq_device():
    return get_device("IonQ-11Q")


@pytest.fixture
def aqt_device():
    return get_device("AQT-4Q")


@pytest.fixture
def ghz3():
    """A 3-qubit GHZ circuit without measurements."""
    return Circuit(3).h(0).cx(0, 1).cx(1, 2)


def assert_unitary_equivalent(circuit_a: Circuit, circuit_b: Circuit, atol: float = 1e-7) -> None:
    """Assert two measurement-free circuits implement the same unitary up to phase."""
    from repro.simulation import circuit_unitary

    ua = circuit_unitary(circuit_a)
    ub = circuit_unitary(circuit_b)
    assert equivalent_up_to_global_phase(ua, ub, atol=atol), "circuits are not equivalent"


@pytest.fixture
def unitary_equivalent():
    return assert_unitary_equivalent
