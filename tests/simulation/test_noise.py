"""Tests for the Kraus noise channels."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NoiseModelError
from repro.simulation import (
    KrausChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_channel,
    two_qubit_depolarizing_channel,
)


ALL_SINGLE_QUBIT_CHANNELS = [
    depolarizing_channel(0.05),
    bit_flip_channel(0.1),
    phase_flip_channel(0.2),
    amplitude_damping_channel(0.3),
    phase_damping_channel(0.15),
    thermal_relaxation_channel(100.0, 80.0, 5.0),
]


class TestChannelConstruction:
    def test_empty_channel_rejected(self):
        with pytest.raises(NoiseModelError):
            KrausChannel(())

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(NoiseModelError):
            KrausChannel((np.eye(2), np.eye(4)))

    def test_invalid_probability_rejected(self):
        with pytest.raises(NoiseModelError):
            depolarizing_channel(1.5)
        with pytest.raises(NoiseModelError):
            bit_flip_channel(-0.1)

    def test_num_qubits(self):
        assert depolarizing_channel(0.1).num_qubits == 1
        assert two_qubit_depolarizing_channel(0.1).num_qubits == 2


class TestTracePreservation:
    @pytest.mark.parametrize("channel", ALL_SINGLE_QUBIT_CHANNELS)
    def test_single_qubit_channels_are_cptp(self, channel):
        assert channel.is_trace_preserving()

    def test_two_qubit_depolarizing_is_cptp(self):
        assert two_qubit_depolarizing_channel(0.07).is_trace_preserving()

    def test_composition_is_cptp(self):
        composed = amplitude_damping_channel(0.2).compose(phase_damping_channel(0.3))
        assert composed.is_trace_preserving()

    def test_composition_dimension_mismatch_rejected(self):
        with pytest.raises(NoiseModelError):
            depolarizing_channel(0.1).compose(two_qubit_depolarizing_channel(0.1))


class TestChannelPhysics:
    def test_zero_probability_is_identity(self):
        channel = depolarizing_channel(0.0)
        rho = np.array([[0.7, 0.2], [0.2, 0.3]], dtype=complex)
        out = channel.apply_to_density_matrix(rho, [0], 1)
        assert np.allclose(out, rho)

    def test_full_amplitude_damping_sends_one_to_zero(self):
        channel = amplitude_damping_channel(1.0)
        rho = np.diag([0.0, 1.0]).astype(complex)
        out = channel.apply_to_density_matrix(rho, [0], 1)
        assert np.allclose(out, np.diag([1.0, 0.0]))

    def test_phase_damping_kills_coherence(self):
        channel = phase_damping_channel(1.0)
        rho = np.full((2, 2), 0.5, dtype=complex)
        out = channel.apply_to_density_matrix(rho, [0], 1)
        assert np.isclose(out[0, 1], 0.0)
        assert np.isclose(out[0, 0], 0.5)

    def test_bit_flip_moves_population(self):
        channel = bit_flip_channel(0.25)
        rho = np.diag([1.0, 0.0]).astype(complex)
        out = channel.apply_to_density_matrix(rho, [0], 1)
        assert np.isclose(out[1, 1].real, 0.25)

    def test_thermal_relaxation_decay_matches_t1(self):
        t1, duration = 50.0, 10.0
        channel = thermal_relaxation_channel(t1, 2 * t1, duration)
        rho = np.diag([0.0, 1.0]).astype(complex)
        out = channel.apply_to_density_matrix(rho, [0], 1)
        assert out[1, 1].real == pytest.approx(math.exp(-duration / t1), abs=1e-9)

    def test_thermal_relaxation_coherence_matches_t2(self):
        t1, t2, duration = 80.0, 60.0, 7.0
        channel = thermal_relaxation_channel(t1, t2, duration)
        rho = np.full((2, 2), 0.5, dtype=complex)
        out = channel.apply_to_density_matrix(rho, [0], 1)
        assert abs(out[0, 1]) == pytest.approx(0.5 * math.exp(-duration / t2), rel=1e-6)

    def test_thermal_relaxation_invalid_t2_rejected(self):
        with pytest.raises(NoiseModelError):
            thermal_relaxation_channel(50.0, 150.0, 1.0)

    def test_thermal_relaxation_negative_duration_rejected(self):
        with pytest.raises(NoiseModelError):
            thermal_relaxation_channel(50.0, 50.0, -1.0)


class TestChannelPropertyBased:
    @given(probability=st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_depolarizing_always_cptp(self, probability):
        assert depolarizing_channel(probability).is_trace_preserving()

    @given(
        t1=st.floats(1.0, 1000.0),
        ratio=st.floats(0.1, 2.0),
        duration=st.floats(0.0, 100.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_thermal_relaxation_always_cptp(self, t1, ratio, duration):
        channel = thermal_relaxation_channel(t1, t1 * ratio, duration)
        assert channel.is_trace_preserving()
