"""Tests for the statevector simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, gate_matrix, random_clifford_circuit
from repro.exceptions import SimulationError
from repro.simulation import (
    StatevectorSimulator,
    apply_unitary,
    circuit_unitary,
    final_statevector,
    probabilities_from_statevector,
    sample_statevector,
)


class TestApplyUnitary:
    def test_x_on_qubit_zero(self):
        state = np.array([1, 0, 0, 0], dtype=complex)
        result = apply_unitary(state, gate_matrix("x"), [0], 2)
        # Little endian: qubit 0 is the least significant bit -> index 1.
        assert np.allclose(result, [0, 1, 0, 0])

    def test_x_on_qubit_one(self):
        state = np.array([1, 0, 0, 0], dtype=complex)
        result = apply_unitary(state, gate_matrix("x"), [1], 2)
        assert np.allclose(result, [0, 0, 1, 0])

    def test_cx_control_order(self):
        # Prepare |q0=1, q1=0> = index 1, then CX(0 -> 1) should give |11> = index 3.
        state = np.zeros(4, dtype=complex)
        state[1] = 1.0
        result = apply_unitary(state, gate_matrix("cx"), [0, 1], 2)
        assert np.allclose(result, [0, 0, 0, 1])

    def test_cx_does_nothing_when_control_clear(self):
        state = np.zeros(4, dtype=complex)
        state[2] = 1.0  # q1 = 1, q0 = 0; control is q0
        result = apply_unitary(state, gate_matrix("cx"), [0, 1], 2)
        assert np.allclose(result, state)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            apply_unitary(np.zeros(4, dtype=complex), gate_matrix("x"), [0, 1], 2)

    def test_norm_preserved(self):
        rng = np.random.default_rng(0)
        state = rng.normal(size=8) + 1j * rng.normal(size=8)
        state /= np.linalg.norm(state)
        result = apply_unitary(state, gate_matrix("cx"), [2, 0], 3)
        assert np.isclose(np.linalg.norm(result), 1.0)


class TestFinalStatevector:
    def test_ghz_state(self, ghz3):
        state = final_statevector(ghz3)
        expected = np.zeros(8, dtype=complex)
        expected[0] = expected[7] = 1 / np.sqrt(2)
        assert np.allclose(state, expected)

    def test_terminal_measurements_ignored(self):
        circuit = Circuit(2, 2).h(0).cx(0, 1).measure_all()
        state = final_statevector(circuit)
        assert np.isclose(abs(state[0]) ** 2 + abs(state[3]) ** 2, 1.0)

    def test_mid_circuit_measurement_rejected(self):
        circuit = Circuit(1, 1).h(0).measure(0, 0).x(0)
        with pytest.raises(SimulationError):
            final_statevector(circuit)

    def test_reset_rejected(self):
        circuit = Circuit(1).h(0).reset(0)
        with pytest.raises(SimulationError):
            final_statevector(circuit)

    def test_initial_state_override(self):
        circuit = Circuit(1).x(0)
        initial = np.array([0, 1], dtype=complex)
        state = final_statevector(circuit, initial_state=initial)
        assert np.allclose(state, [1, 0])

    def test_circuit_unitary_matches_statevector(self, ghz3):
        unitary = circuit_unitary(ghz3)
        state = final_statevector(ghz3)
        assert np.allclose(unitary[:, 0], state)


class TestSampling:
    def test_probabilities_normalised(self):
        state = np.array([1, 1j], dtype=complex) / np.sqrt(2)
        probabilities = probabilities_from_statevector(state)
        assert np.allclose(probabilities, [0.5, 0.5])

    def test_zero_state_rejected(self):
        with pytest.raises(SimulationError):
            probabilities_from_statevector(np.zeros(2, dtype=complex))

    def test_sample_statevector_deterministic_state(self):
        state = np.zeros(4, dtype=complex)
        state[2] = 1.0  # q1 = 1, q0 = 0
        counts = sample_statevector(state, 100, rng=np.random.default_rng(0))
        assert counts == {"01": 100}

    def test_sample_total_shots(self):
        state = np.ones(4, dtype=complex) / 2.0
        counts = sample_statevector(state, 256, rng=np.random.default_rng(1))
        assert sum(counts.values()) == 256


class TestStatevectorSimulator:
    def test_requires_measurement(self, simulator):
        with pytest.raises(SimulationError):
            simulator.run(Circuit(1).h(0))

    def test_requires_positive_shots(self, simulator, ghz3):
        with pytest.raises(SimulationError):
            simulator.run(ghz3.copy().measure_all(), shots=0)

    def test_ghz_counts_are_balanced(self, simulator):
        circuit = Circuit(3, 3).h(0).cx(0, 1).cx(1, 2).measure_all()
        counts = simulator.run(circuit, shots=4000)
        assert set(counts) == {"000", "111"}
        assert abs(counts["000"] - 2000) < 250

    def test_partial_measurement(self, simulator):
        circuit = Circuit(2, 1).x(1).measure(1, 0)
        counts = simulator.run(circuit, shots=50)
        assert counts == {"1": 50}

    def test_mid_circuit_measurement_and_feedforward_free_reset(self):
        # Measure |+> then reset: the reset qubit must always read 0 afterwards.
        simulator = StatevectorSimulator(seed=11)
        circuit = Circuit(1, 2).h(0).measure(0, 0).reset(0).measure(0, 1)
        counts = simulator.run(circuit, shots=200)
        assert all(key[1] == "0" for key in counts)
        first_bits = {key[0] for key in counts}
        assert first_bits == {"0", "1"}

    def test_reset_after_x(self):
        simulator = StatevectorSimulator(seed=3)
        circuit = Circuit(1, 1).x(0).reset(0).measure(0, 0)
        counts = simulator.run(circuit, shots=100)
        assert counts == {"0": 100}

    def test_deterministic_bell_measurement_correlation(self):
        simulator = StatevectorSimulator(seed=5)
        circuit = Circuit(2, 2).h(0).cx(0, 1).measure_all()
        counts = simulator.run(circuit, shots=500)
        assert set(counts).issubset({"00", "11"})

    def test_mid_circuit_measurement_collapse(self):
        # Measuring q0 of a Bell pair mid-circuit must classically correlate with q1.
        simulator = StatevectorSimulator(seed=9)
        circuit = Circuit(2, 2).h(0).cx(0, 1).measure(0, 0).x(0).measure(1, 1)
        counts = simulator.run(circuit, shots=300)
        assert all(key[0] == key[1] for key in counts)

    def test_trajectory_splitting_preserves_shot_total(self):
        simulator = StatevectorSimulator(seed=2, trajectories=7)
        circuit = Circuit(2, 2).h(0).cx(0, 1).reset(0).measure_all()
        counts = simulator.run(circuit, shots=123)
        assert sum(counts.values()) == 123

    def test_statevector_accessor(self, simulator, ghz3):
        state = simulator.statevector(ghz3)
        assert np.isclose(np.linalg.norm(state), 1.0)


class TestSimulatorPropertyBased:
    @given(num_qubits=st.integers(2, 4), seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_random_circuit_counts_total(self, num_qubits, seed):
        circuit = random_clifford_circuit(num_qubits, 15, rng=seed)
        circuit.measure_all()
        counts = StatevectorSimulator(seed=seed).run(circuit, shots=64)
        assert sum(counts.values()) == 64
        assert all(len(key) == num_qubits for key in counts)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_unitarity_of_random_clifford(self, seed):
        circuit = random_clifford_circuit(3, 12, rng=seed)
        unitary = circuit_unitary(circuit)
        assert np.allclose(unitary @ unitary.conj().T, np.eye(8), atol=1e-8)
