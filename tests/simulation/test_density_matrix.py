"""Tests for the exact density-matrix simulator (reference implementation)."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.exceptions import SimulationError
from repro.simulation import (
    DensityMatrixSimulator,
    NoiseModel,
    StatevectorSimulator,
    final_statevector,
)
from repro.simulation.density_matrix import apply_kraus_to_density_matrix
from repro.simulation.noise import depolarizing_channel


class TestKrausApplication:
    def test_unitary_application_matches_statevector(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        state = final_statevector(circuit)
        expected = np.outer(state, state.conj())
        simulator = DensityMatrixSimulator()
        rho = simulator.final_density_matrix(circuit)
        assert np.allclose(rho, expected, atol=1e-10)

    def test_trace_preserved_by_channels(self):
        rho = np.diag([0.25, 0.25, 0.25, 0.25]).astype(complex)
        channel = depolarizing_channel(0.3)
        out = apply_kraus_to_density_matrix(rho, channel.kraus_operators, [1], 2)
        assert np.isclose(np.trace(out).real, 1.0)


class TestIdealSampling:
    def test_bell_state_counts(self):
        circuit = Circuit(2, 2).h(0).cx(0, 1).measure_all()
        counts = DensityMatrixSimulator(seed=0).run(circuit, shots=400)
        assert set(counts).issubset({"00", "11"})
        assert abs(counts.get("00", 0) - 200) < 60

    def test_reset_supported(self):
        circuit = Circuit(1, 1).x(0).reset(0).measure(0, 0)
        counts = DensityMatrixSimulator(seed=1).run(circuit, shots=100)
        assert counts == {"0": 100}

    def test_qubit_limit_enforced(self):
        circuit = Circuit(12, 12).h(0).measure_all()
        with pytest.raises(SimulationError):
            DensityMatrixSimulator(max_qubits=10).run(circuit, shots=10)

    def test_repeated_measurement_of_same_qubit_rejected(self):
        circuit = Circuit(1, 2).measure(0, 0).measure(0, 1)
        with pytest.raises(SimulationError):
            DensityMatrixSimulator().run(circuit, shots=10)


class TestAgreementWithTrajectories:
    def test_noisy_distribution_agrees_with_monte_carlo(self):
        """The trajectory simulator must agree with the exact channel evolution."""
        circuit = Circuit(2, 2).h(0).cx(0, 1).measure_all()
        model = NoiseModel.uniform(2, error_1q=0.02, error_2q=0.1, readout_error=0.05)

        exact_counts = DensityMatrixSimulator(noise_model=model, seed=0).run(circuit, shots=6000)
        sampled_counts = StatevectorSimulator(noise_model=model, seed=1).run(circuit, shots=6000)

        exact = {k: v / 6000 for k, v in exact_counts.items()}
        sampled = {k: v / 6000 for k, v in sampled_counts.items()}
        for key in set(exact) | set(sampled):
            assert abs(exact.get(key, 0.0) - sampled.get(key, 0.0)) < 0.04

    def test_readout_confusion_matches_expectation(self):
        circuit = Circuit(1, 1).measure(0, 0)
        model = NoiseModel.uniform(1, error_1q=0.0, error_2q=0.0, readout_error=0.2)
        counts = DensityMatrixSimulator(noise_model=model, seed=2).run(circuit, shots=5000)
        assert abs(counts.get("1", 0) / 5000 - 0.2) < 0.03
