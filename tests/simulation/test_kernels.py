"""Tests for the structure-specialised simulation kernels and gate fusion."""

import json
import math
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, gate_matrix
from repro.simulation import StatevectorSimulator, final_statevector
from repro.simulation.kernels import (
    analyze_matrix,
    apply_kernel,
    apply_matrix,
    apply_matrix_reference,
    fuse_circuit,
    fuse_operations,
    kernel_for_gate,
    measure_qubit_batch,
    qubit_axis,
    reset_qubit_batch,
    sample_counts_array,
)

GOLDEN = pathlib.Path(__file__).with_name("golden_noiseless_counts.json")

#: A gate pool covering every kernel kind: diagonal (exact and phase-valued),
#: permutation (exact and phase-valued), generic 1q/2q/3q.
GATE_POOL = [
    ("x", (), 1),
    ("z", (), 1),
    ("h", (), 1),
    ("s", (), 1),
    ("t", (), 1),
    ("rz", (0.37,), 1),
    ("rx", (1.2,), 1),
    ("u", (0.5, 1.1, -0.4), 1),
    ("cx", (), 2),
    ("cz", (), 2),
    ("swap", (), 2),
    ("iswap", (), 2),
    ("cp", (0.81,), 2),
    ("rzz", (0.63,), 2),
    ("rxx", (0.3,), 2),
    ("zzswap", (0.44,), 2),
    ("ccx", (), 3),
]


def _random_circuit(num_qubits: int, num_gates: int, seed: int) -> Circuit:
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits)
    pool = [entry for entry in GATE_POOL if entry[2] <= num_qubits]
    for _ in range(num_gates):
        name, params, arity = pool[rng.integers(len(pool))]
        qubits = rng.choice(num_qubits, size=arity, replace=False)
        circuit.add_gate(name, [int(q) for q in qubits], list(params))
    return circuit


def _reference_statevector(circuit: Circuit) -> np.ndarray:
    """Evolve with the historical tensordot kernel only (the parity oracle)."""
    n = circuit.num_qubits
    psi = np.zeros((2,) * n, dtype=complex)
    psi[(0,) * n] = 1.0
    for instruction in circuit:
        if not instruction.is_unitary():
            continue
        axes = [qubit_axis(q, n) for q in instruction.qubits]
        psi = apply_matrix_reference(psi, instruction.gate.matrix(), axes)
    return np.ascontiguousarray(psi).reshape(-1)


class TestAnalyzeMatrix:
    def test_diagonal_classification(self):
        kernel = analyze_matrix(gate_matrix("rz", 0.5))
        assert kernel.kind == "diagonal"
        assert not kernel.exact_compatible  # e^{±iθ/2} entries round differently

    def test_exact_diagonal(self):
        for name in ("z", "s", "sdg", "cz"):
            kernel = analyze_matrix(gate_matrix(name))
            assert kernel.kind == "diagonal"
            assert kernel.exact_compatible

    def test_permutation_classification(self):
        for name in ("x", "cx", "swap", "iswap", "ccx", "cswap"):
            kernel = analyze_matrix(gate_matrix(name))
            assert kernel.kind == "permutation"
            assert kernel.exact_compatible

    def test_phase_permutation_not_exact(self):
        kernel = analyze_matrix(gate_matrix("zzswap", 0.3))
        assert kernel.kind == "permutation"
        assert not kernel.exact_compatible

    def test_generic_classification(self):
        assert analyze_matrix(gate_matrix("h")).kind == "generic"
        assert analyze_matrix(gate_matrix("rxx", 0.2)).kind == "generic"

    def test_kernel_for_gate_is_cached(self):
        from repro.circuits.gates import Gate

        assert kernel_for_gate(Gate("cx")) is kernel_for_gate(Gate("cx"))


class TestApplyAgainstReference:
    @pytest.mark.parametrize("name,params,arity", GATE_POOL, ids=[g[0] for g in GATE_POOL])
    def test_single_gate_matches_reference(self, name, params, arity):
        rng = np.random.default_rng(42)
        n = 4
        state = rng.normal(size=(2,) * n) + 1j * rng.normal(size=(2,) * n)
        state /= np.linalg.norm(state)
        qubits = tuple(int(q) for q in rng.choice(n, size=arity, replace=False))
        axes = [qubit_axis(q, n) for q in qubits]
        matrix = gate_matrix(name, *params)
        fast = apply_matrix(state.copy(), matrix, axes)
        reference = apply_matrix_reference(state, matrix, axes)
        assert np.allclose(fast, reference, atol=1e-12)

    def test_strict_mode_is_bit_identical(self):
        """Strict kernels must not change a single bit of the probabilities."""
        rng = np.random.default_rng(7)
        n = 5
        state = rng.normal(size=(2,) * n) + 1j * rng.normal(size=(2,) * n)
        state /= np.linalg.norm(state)
        for name, params, arity in GATE_POOL:
            qubits = tuple(int(q) for q in rng.choice(n, size=arity, replace=False))
            axes = [qubit_axis(q, n) for q in qubits]
            matrix = gate_matrix(name, *params)
            strict = apply_matrix(state.copy(), matrix, axes, strict=True)
            reference = apply_matrix_reference(state, matrix, axes)
            probs_strict = np.abs(np.ascontiguousarray(strict).reshape(-1)) ** 2
            probs_ref = np.abs(np.ascontiguousarray(reference).reshape(-1)) ** 2
            assert np.array_equal(probs_strict, probs_ref), name

    def test_batched_apply_matches_per_row(self):
        rng = np.random.default_rng(3)
        n, batch_size = 4, 6
        batch = rng.normal(size=(batch_size,) + (2,) * n) + 1j * rng.normal(
            size=(batch_size,) + (2,) * n
        )
        for name, params, arity in [("rz", (0.4,), 1), ("cx", (), 2), ("rxx", (0.9,), 2)]:
            qubits = tuple(int(q) for q in rng.choice(n, size=arity, replace=False))
            matrix = gate_matrix(name, *params)
            batched_axes = [qubit_axis(q, n, offset=1) for q in qubits]
            out = apply_matrix(batch.copy(), matrix, batched_axes)
            row_axes = [qubit_axis(q, n) for q in qubits]
            for t in range(batch_size):
                expected = apply_matrix_reference(batch[t], matrix, row_axes)
                assert np.allclose(out[t], expected, atol=1e-12)

    def test_diagonal_in_place_flag(self):
        state = np.ones((2, 2), dtype=complex)
        kernel = analyze_matrix(gate_matrix("rz", 0.5))
        preserved = apply_kernel(state, kernel, [1], in_place=False)
        assert np.all(state == 1.0)
        mutated = apply_kernel(state, kernel, [1], in_place=True)
        assert mutated is state
        assert np.allclose(mutated, preserved)


class TestFusion:
    def test_adjacent_single_qubit_gates_merge(self):
        ops = [(gate_matrix("h"), (0,)), (gate_matrix("t"), (0,)), (gate_matrix("x"), (1,))]
        fused = fuse_operations(ops)
        assert len(fused) == 2
        by_qubit = {f.qubits: f.matrix for f in fused}
        assert np.allclose(by_qubit[(0,)], gate_matrix("t") @ gate_matrix("h"))

    def test_single_qubit_absorbed_into_two_qubit(self):
        ops = [(gate_matrix("h"), (0,)), (gate_matrix("cx"), (0, 1))]
        fused = fuse_operations(ops)
        assert len(fused) == 1
        assert fused[0].qubits == (0, 1)
        expected = gate_matrix("cx") @ np.kron(gate_matrix("h"), np.eye(2))
        assert np.allclose(fused[0].matrix, expected)

    def test_same_pair_two_qubit_gates_merge_with_reordering(self):
        ops = [(gate_matrix("cx"), (0, 1)), (gate_matrix("cx"), (1, 0))]
        fused = fuse_operations(ops)
        assert len(fused) == 1
        # Verify through full-state evolution instead of matrix juggling.
        probe = Circuit(2).h(0).cx(0, 1).cx(1, 0)
        assert np.allclose(
            final_statevector(probe, fuse=True), _reference_statevector(probe), atol=1e-10
        )

    def test_three_qubit_gates_flush_pending(self):
        ops = [(gate_matrix("h"), (0,)), (gate_matrix("ccx"), (0, 1, 2))]
        fused = fuse_operations(ops)
        assert [f.qubits for f in fused] == [(0,), (0, 1, 2)]

    def test_fuse_circuit_rejects_measurement(self):
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError):
            fuse_circuit(Circuit(1, 1).h(0).measure(0, 0))

    @given(num_qubits=st.integers(3, 6), num_gates=st.integers(5, 30), seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_fused_evolution_matches_reference(self, num_qubits, num_gates, seed):
        """Property: fused/specialised kernels == reference apply on random circuits."""
        circuit = _random_circuit(num_qubits, num_gates, seed)
        reference = _reference_statevector(circuit)
        fused = final_statevector(circuit, fuse=True)
        specialised = final_statevector(circuit, fuse=False)
        assert np.allclose(fused, reference, atol=1e-10)
        # The strict (unfused) path must preserve sampling bit-for-bit.
        assert np.array_equal(np.abs(specialised) ** 2, np.abs(reference) ** 2)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_fusion_reduces_operation_count(self, seed):
        circuit = _random_circuit(4, 24, seed)
        operations = [(i.gate.matrix(), i.qubits) for i in circuit if i.is_unitary()]
        assert len(fuse_operations(operations)) <= len(operations)


class TestGoldenBitIdentity:
    """The seeded noiseless sampling path is frozen: counts captured from the
    pre-kernel implementation must reproduce exactly, bit for bit."""

    def test_noiseless_counts_match_golden(self):
        from repro.benchmarks import (
            GHZBenchmark,
            HamiltonianSimulationBenchmark,
            VanillaQAOABenchmark,
        )
        from repro.circuits.random_circuits import quantum_volume_circuit

        golden = json.loads(GOLDEN.read_text())
        cases = {
            "ghz4_seed7": (GHZBenchmark(4).circuits()[0], 7, 300),
            "qaoa4_seed11": (VanillaQAOABenchmark(4, seed=0).circuits()[0], 11, 300),
            "hamsim4_seed3": (HamiltonianSimulationBenchmark(4, steps=1).circuits()[0], 3, 300),
            "qv5_seed19": (quantum_volume_circuit(5, rng=3), 19, 400),
        }
        for name, (circuit, seed, shots) in cases.items():
            counts = StatevectorSimulator(seed=seed).run(circuit, shots=shots)
            assert dict(counts) == golden[name], name


class TestBatchedCollapse:
    def test_measure_batch_collapses_in_place(self):
        rng = np.random.default_rng(0)
        n, batch_size = 3, 16
        batch = rng.normal(size=(batch_size,) + (2,) * n) + 1j * rng.normal(
            size=(batch_size,) + (2,) * n
        )
        norms = np.sqrt((np.abs(batch) ** 2).reshape(batch_size, -1).sum(axis=1))
        batch /= norms.reshape(-1, 1, 1, 1)
        outcomes = measure_qubit_batch(batch, 1, n, rng)
        assert set(np.unique(outcomes)) <= {0, 1}
        flat = batch.reshape(batch_size, -1)
        for t in range(batch_size):
            for index in range(2**n):
                bit = (index >> 1) & 1
                if bit != outcomes[t]:
                    assert flat[t, index] == 0.0
            assert math.isclose(float((np.abs(flat[t]) ** 2).sum()), 1.0, rel_tol=1e-9)

    def test_reset_batch_forces_zero(self):
        rng = np.random.default_rng(1)
        n, batch_size = 2, 32
        plus = np.full((2,) * n, 0.5, dtype=complex)
        batch = np.broadcast_to(plus, (batch_size,) + plus.shape).copy()
        reset_qubit_batch(batch, 0, n, rng)
        flat = batch.reshape(batch_size, -1)
        for index in range(2**n):
            if index & 1:  # qubit 0 set
                assert np.all(flat[:, index] == 0.0)

    def test_sample_counts_array(self):
        rows = np.array([[0, 1], [0, 1], [1, 0], [0, 0]], dtype=np.uint8)
        assert sample_counts_array(rows, 2) == {"01": 2, "10": 1, "00": 1}

    def test_sample_counts_array_empty_register(self):
        assert sample_counts_array(np.zeros((5, 0), dtype=np.uint8), 0) == {"": 5}

    def test_measure_qubit_single_state_collapses_in_place(self):
        simulator = StatevectorSimulator(seed=0)
        state = np.zeros(4, dtype=complex)
        state[0] = state[3] = 1 / math.sqrt(2)  # Bell state
        outcome, collapsed = simulator._measure_qubit(state, 0, 2)
        assert collapsed is state  # contiguous input: collapsed in place
        expected_index = 3 if outcome == 1 else 0
        assert collapsed[expected_index] == pytest.approx(1.0)
        assert (np.abs(collapsed) ** 2).sum() == pytest.approx(1.0)

    def test_measure_qubit_non_contiguous_input(self):
        simulator = StatevectorSimulator(seed=1)
        backing = np.zeros((4, 2), dtype=complex)
        backing[0, 0] = backing[3, 0] = 1 / math.sqrt(2)
        state = backing[:, 0]  # strided view: reshape would silently copy
        outcome, collapsed = simulator._measure_qubit(state, 0, 2)
        assert outcome in (0, 1)
        expected_index = 3 if outcome == 1 else 0
        assert collapsed[expected_index] == pytest.approx(1.0)
