"""Statistical parity of batched Monte-Carlo trajectories vs the exact
density-matrix reference, plus unitary-mixture channel machinery."""

import numpy as np
import pytest

from repro.benchmarks import GHZBenchmark, VanillaQAOABenchmark
from repro.simulation import (
    DensityMatrixSimulator,
    NoiseModel,
    StatevectorSimulator,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    thermal_relaxation_channel,
    two_qubit_depolarizing_channel,
)


def _tvd(counts, exact_probabilities):
    """Total variation distance between sampled counts and an exact distribution."""
    shots = sum(counts.values())
    keys = set(counts) | set(exact_probabilities)
    return 0.5 * sum(
        abs(counts.get(k, 0) / shots - exact_probabilities.get(k, 0.0)) for k in keys
    )


def _exact_distribution(circuit, model, seed=0):
    simulator = DensityMatrixSimulator(noise_model=model, seed=seed)
    probabilities, measured = simulator._output_distribution(circuit)
    exact = {}
    for index, p in enumerate(probabilities):
        if p <= 0:
            continue
        bits = ["0"] * circuit.num_clbits
        for qubit, clbit in measured:
            bits[clbit] = "1" if (index >> qubit) & 1 else "0"
        key = "".join(bits)
        exact[key] = exact.get(key, 0.0) + float(p)
    return exact


class TestUnitaryMixture:
    def test_depolarizing_is_unitary_mixture(self):
        mixture = depolarizing_channel(0.3).unitary_mixture()
        assert mixture is not None
        probabilities, unitaries = mixture
        assert np.isclose(probabilities.sum(), 1.0)
        assert np.isclose(probabilities[0], 0.7)
        for unitary in unitaries:
            assert np.allclose(unitary @ unitary.conj().T, np.eye(2), atol=1e-12)

    def test_two_qubit_depolarizing_is_unitary_mixture(self):
        mixture = two_qubit_depolarizing_channel(0.1).unitary_mixture()
        assert mixture is not None
        assert len(mixture[1]) == 16

    def test_bit_flip_is_unitary_mixture(self):
        assert bit_flip_channel(0.2).unitary_mixture() is not None

    def test_amplitude_damping_is_not(self):
        assert amplitude_damping_channel(0.2).unitary_mixture() is None

    def test_thermal_relaxation_is_not(self):
        assert thermal_relaxation_channel(50.0, 40.0, 1.0).unitary_mixture() is None

    @pytest.mark.parametrize("probability", [0.001, 0.02, 0.1, 0.3])
    def test_identity_branch_is_detected_despite_rounding(self, probability):
        """K0/sqrt(weight) can land 1 ulp off exact identity; the no-error
        branch must still be flagged so the batched path skips it."""
        from repro.simulation.statevector import _channel_step

        for channel in (
            depolarizing_channel(probability),
            two_qubit_depolarizing_channel(probability),
        ):
            step = _channel_step(channel, tuple(range(channel.num_qubits)))
            assert step.mixture is not None
            _probs, _kernels, identity_flags = step.mixture
            assert identity_flags[0]

    def test_mixture_is_cached(self):
        channel = depolarizing_channel(0.11)
        assert channel.unitary_mixture() is channel.unitary_mixture()

    def test_channel_factories_are_cached(self):
        assert depolarizing_channel(0.01) is depolarizing_channel(0.01)


class TestTrajectoryDensityMatrixParity:
    """Fixed-seed TVD thresholds: batched trajectories vs exact evolution."""

    SHOTS = 4000
    THRESHOLD = 0.05  # ~3 sigma for 4000 shots over these distributions

    @pytest.mark.parametrize(
        "circuit,model",
        [
            (
                GHZBenchmark(3).circuits()[0],
                NoiseModel.uniform(3, error_1q=0.02, error_2q=0.05, readout_error=0.03),
            ),
            (
                GHZBenchmark(4).circuits()[0],
                NoiseModel.uniform(4, error_1q=0.01, error_2q=0.08, readout_error=0.02),
            ),
            (
                VanillaQAOABenchmark(4, seed=0).circuits()[0],
                NoiseModel.uniform(4, error_1q=0.02, error_2q=0.05, readout_error=0.03),
            ),
        ],
        ids=["ghz3-depolarizing", "ghz4-depolarizing", "qaoa4-depolarizing"],
    )
    def test_depolarizing_parity(self, circuit, model):
        exact = _exact_distribution(circuit, model)
        counts = StatevectorSimulator(noise_model=model, seed=1234).run(
            circuit, shots=self.SHOTS
        )
        assert _tvd(counts, exact) < self.THRESHOLD

    def test_relaxation_parity(self):
        """Thermal relaxation exercises the general (non-mixture) Kraus path."""
        circuit = GHZBenchmark(3).circuits()[0]
        model = NoiseModel(3, t1=40.0, t2=30.0, gate_time_1q=0.3, gate_time_2q=2.0)
        exact = _exact_distribution(circuit, model)
        counts = StatevectorSimulator(noise_model=model, seed=77).run(
            circuit, shots=self.SHOTS
        )
        assert _tvd(counts, exact) < self.THRESHOLD

    def test_spread_trajectories_parity(self):
        """Spreading shots over fewer trajectories stays unbiased."""
        circuit = GHZBenchmark(3).circuits()[0]
        model = NoiseModel.uniform(3, error_1q=0.02, error_2q=0.05, readout_error=0.03)
        exact = _exact_distribution(circuit, model)
        counts = StatevectorSimulator(noise_model=model, seed=5, trajectories=500).run(
            circuit, shots=self.SHOTS
        )
        # Fewer trajectories -> more correlation between shots; loosen slightly.
        assert _tvd(counts, exact) < 2 * self.THRESHOLD


class TestDepolarizingShortcut:
    """The closed-form depolarizing application must equal the Kraus sum."""

    @pytest.mark.parametrize("probability", [0.0, 0.01, 0.3, 1.0])
    def test_single_qubit_matches_kraus_sum(self, probability):
        from repro.simulation.density_matrix import (
            _apply_depolarizing,
            _depolarizing_weights,
            apply_kraus_to_density_matrix,
        )

        channel = depolarizing_channel(probability)
        weights = _depolarizing_weights(channel)
        assert weights is not None
        rng = np.random.default_rng(0)
        raw = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        rho = raw @ raw.conj().T
        rho /= np.trace(rho)
        expected = apply_kraus_to_density_matrix(rho, channel.kraus_operators, [1], 3)
        tensor = rho.reshape((2,) * 6)
        fast = _apply_depolarizing(tensor, [1], 3, *weights).reshape(8, 8)
        assert np.allclose(fast, expected, atol=1e-12)

    def test_two_qubit_matches_kraus_sum(self):
        from repro.simulation.density_matrix import (
            _apply_depolarizing,
            _depolarizing_weights,
            apply_kraus_to_density_matrix,
        )

        channel = two_qubit_depolarizing_channel(0.08)
        weights = _depolarizing_weights(channel)
        assert weights is not None
        rng = np.random.default_rng(1)
        raw = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        rho = raw @ raw.conj().T
        rho /= np.trace(rho)
        expected = apply_kraus_to_density_matrix(rho, channel.kraus_operators, [2, 0], 3)
        tensor = rho.reshape((2,) * 6)
        fast = _apply_depolarizing(tensor, [2, 0], 3, *weights).reshape(8, 8)
        assert np.allclose(fast, expected, atol=1e-12)

    def test_non_depolarizing_channels_fall_back(self):
        from repro.simulation.density_matrix import _depolarizing_weights

        assert _depolarizing_weights(amplitude_damping_channel(0.1)) is None
        assert _depolarizing_weights(bit_flip_channel(0.1)) is None

    def test_biased_pauli_channel_with_depolarizing_name_falls_back(self):
        """A non-uniform Pauli mixture merely *named* depolarizing must not
        take the uniform closed-form path."""
        from repro.simulation import KrausChannel
        from repro.simulation.density_matrix import _depolarizing_weights

        identity = np.eye(2)
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        y = np.array([[0, -1j], [1j, 0]], dtype=complex)
        z = np.diag([1, -1]).astype(complex)
        biased = KrausChannel(
            (
                np.sqrt(0.9) * identity,
                np.sqrt(0.07) * x,
                np.sqrt(0.02) * y,
                np.sqrt(0.01) * z,
            ),
            name="depolarizing",
        )
        assert _depolarizing_weights(biased) is None

    def test_pauli_phase_variants_still_match(self):
        """Uniform mixtures over phase-twisted Paulis keep the shortcut."""
        from repro.simulation import KrausChannel
        from repro.simulation.density_matrix import _depolarizing_weights

        p = 0.3
        identity = np.eye(2)
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        y = np.array([[0, -1j], [1j, 0]], dtype=complex)
        z = np.diag([1, -1]).astype(complex)
        twisted = KrausChannel(
            (
                np.sqrt(1 - p) * identity,
                -np.sqrt(p / 3) * x,  # P rho P is phase-insensitive
                1j * np.sqrt(p / 3) * y,
                np.sqrt(p / 3) * z,
            ),
            name="depolarizing",
        )
        weights = _depolarizing_weights(twisted)
        assert weights is not None
        assert weights[1] == pytest.approx(4 * p / 3)


class TestBatchedDeterminismAndChunking:
    def test_same_seed_same_counts(self):
        circuit = VanillaQAOABenchmark(4, seed=0).circuits()[0]
        model = NoiseModel.uniform(4, error_1q=0.01, error_2q=0.05, readout_error=0.02)
        first = StatevectorSimulator(noise_model=model, seed=9).run(circuit, shots=777)
        second = StatevectorSimulator(noise_model=model, seed=9).run(circuit, shots=777)
        assert dict(first) == dict(second)

    def test_chunked_run_preserves_shot_total_and_statistics(self):
        circuit = GHZBenchmark(3).circuits()[0]
        model = NoiseModel.uniform(3, error_1q=0.02, error_2q=0.05, readout_error=0.03)
        simulator = StatevectorSimulator(noise_model=model, seed=3, max_batch_elements=64)
        counts = simulator.run(circuit, shots=2000)
        assert sum(counts.values()) == 2000
        exact = _exact_distribution(circuit, model)
        assert _tvd(counts, exact) < 0.06

    def test_mid_circuit_measurement_noiseless_collapse(self):
        from repro.circuits import Circuit

        circuit = Circuit(2, 2).h(0).cx(0, 1).measure(0, 0).x(0).measure(1, 1)
        counts = StatevectorSimulator(seed=9).run(circuit, shots=500)
        assert all(key[0] == key[1] for key in counts)

    def test_measurement_free_noisy_circuit_counts_all_zero_register(self):
        """A noisy circuit with no measurements reports the classical register."""
        from repro.circuits import Circuit

        circuit = Circuit(1, 1).h(0)
        model = NoiseModel.uniform(1, error_1q=0.01)
        counts = StatevectorSimulator(noise_model=model, seed=0).run(circuit, shots=25)
        assert dict(counts) == {"0": 25}

    def test_terminal_measurement_map_keeps_last_mapping(self):
        """A qubit measured into two classical bits back to back: both written,
        qubit bit sampled once (the documented last-mapping-wins contract
        applies to the qubit -> sampled-bit map)."""
        from repro.circuits import Circuit

        circuit = Circuit(1, 2).x(0).measure(0, 0).measure(0, 1)
        counts = StatevectorSimulator(seed=2).run(circuit, shots=50)
        assert sum(counts.values()) == 50
        for key in counts:
            assert key[1] == "1"  # terminal mapping (clbit 1) always written
