"""Tests for calibration-derived noise models."""

import numpy as np
import pytest

from repro.circuits import Circuit, Gate, Instruction
from repro.exceptions import NoiseModelError
from repro.simulation import NoiseModel, StatevectorSimulator


def _instruction(name, qubits, params=()):
    return Instruction(Gate(name, tuple(params)), tuple(qubits))


class TestConstruction:
    def test_invalid_sizes_rejected(self):
        with pytest.raises(NoiseModelError):
            NoiseModel(0)

    def test_per_qubit_lengths_checked(self):
        with pytest.raises(NoiseModelError):
            NoiseModel(3, t1=[10.0, 20.0])

    def test_error_ranges_checked(self):
        with pytest.raises(NoiseModelError):
            NoiseModel(2, error_1q=1.5)

    def test_t2_clamped_to_twice_t1(self):
        model = NoiseModel(1, t1=10.0, t2=100.0)
        assert model.t2[0] == pytest.approx(20.0)


class TestChannelSelection:
    def test_ideal_model_produces_no_channels(self):
        model = NoiseModel.ideal(2)
        assert model.gate_channels(_instruction("cx", (0, 1))) == []
        assert model.measurement_channels(0) == []
        assert model.reset_channels(0) == []

    def test_single_qubit_gate_channels(self):
        model = NoiseModel(2, error_1q=0.01, error_2q=0.0, t1=100, t2=100)
        channels = model.gate_channels(_instruction("h", (0,)))
        names = [channel.name for channel, _qubits in channels]
        assert "depolarizing" in names
        assert any("thermal" in name for name in names)

    def test_two_qubit_gate_channels(self):
        model = NoiseModel.uniform(3, error_2q=0.02)
        channels = model.gate_channels(_instruction("cx", (0, 2)))
        assert channels[0][0].name == "depolarizing2"
        assert channels[0][1] == (0, 2)

    def test_per_pair_two_qubit_error(self):
        model = NoiseModel(3, t1=1e9, t2=1e9, error_2q={(0, 1): 0.05, (1, 2): 0.01})
        assert model.two_qubit_error(1, 0) == pytest.approx(0.05)
        assert model.two_qubit_error(2, 1) == pytest.approx(0.01)

    def test_measurement_channels_touch_other_qubits(self):
        model = NoiseModel(3, t1=50.0, t2=50.0, readout_time=5.0)
        channels = model.measurement_channels(1)
        touched = {qubits[0] for _channel, qubits in channels}
        assert touched == {0, 2}

    def test_measurement_idle_can_be_disabled(self):
        model = NoiseModel(3, t1=50.0, t2=50.0, idle_during_readout=False)
        assert model.measurement_channels(1) == []

    def test_reset_error_channel(self):
        model = NoiseModel(1, t1=1e9, t2=1e9, reset_error=0.1, idle_during_readout=False)
        channels = model.reset_channels(0)
        assert len(channels) == 1
        assert channels[0][0].name == "bit_flip"


class TestReadoutError:
    def test_readout_flip_statistics(self):
        model = NoiseModel.uniform(1, readout_error=0.3)
        rng = np.random.default_rng(0)
        flips = sum(model.apply_readout_error(0, 0, rng) for _ in range(5000))
        assert 0.25 < flips / 5000 < 0.35

    def test_zero_readout_error_never_flips(self):
        model = NoiseModel.ideal(1)
        rng = np.random.default_rng(0)
        assert all(model.apply_readout_error(0, 1, rng) == 1 for _ in range(100))


class TestRestriction:
    def test_restricted_model_reindexes_qubits(self):
        model = NoiseModel(
            4,
            t1=[10.0, 20.0, 30.0, 40.0],
            t2=[10.0, 20.0, 30.0, 40.0],
            error_1q=[0.01, 0.02, 0.03, 0.04],
        )
        restricted = model.restricted_to([2, 0])
        assert restricted.num_qubits == 2
        assert restricted.t1 == [30.0, 10.0]
        assert restricted.error_1q == [0.03, 0.01]

    def test_restricted_pairwise_errors(self):
        model = NoiseModel(3, t1=1e9, t2=1e9, error_2q={(0, 2): 0.07})
        restricted = model.restricted_to([0, 2])
        assert restricted.two_qubit_error(0, 1) == pytest.approx(0.07)


class TestEndToEndNoise:
    def test_noisy_ghz_loses_fidelity(self):
        circuit = Circuit(3, 3).h(0).cx(0, 1).cx(1, 2).measure_all()
        noisy = StatevectorSimulator(NoiseModel.uniform(3, error_2q=0.2, readout_error=0.1), seed=1)
        counts = noisy.run(circuit, shots=500)
        ideal_mass = (counts.get("000", 0) + counts.get("111", 0)) / 500
        assert ideal_mass < 0.95

    def test_ideal_model_behaves_like_no_noise(self):
        circuit = Circuit(2, 2).h(0).cx(0, 1).measure_all()
        simulator = StatevectorSimulator(NoiseModel.ideal(2), seed=2, trajectories=10)
        counts = simulator.run(circuit, shots=200)
        assert set(counts).issubset({"00", "11"})

    def test_readout_error_alone_flips_outcomes(self):
        circuit = Circuit(1, 1).measure(0, 0)
        model = NoiseModel.uniform(1, error_1q=0.0, error_2q=0.0, readout_error=0.25)
        counts = StatevectorSimulator(model, seed=3).run(circuit, shots=1000)
        assert 150 < counts.get("1", 0) < 350
