"""Unit tests for the Circuit IR."""

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, Gate, Instruction
from repro.exceptions import CircuitError


class TestInstruction:
    def test_duplicate_qubits_rejected(self):
        with pytest.raises(CircuitError):
            Instruction(Gate("cx"), (1, 1))

    def test_wrong_arity_rejected(self):
        with pytest.raises(CircuitError):
            Instruction(Gate("cx"), (0,))

    def test_measure_requires_clbit(self):
        with pytest.raises(CircuitError):
            Instruction(Gate("measure"), (0,))

    def test_gate_cannot_take_clbits(self):
        with pytest.raises(CircuitError):
            Instruction(Gate("x"), (0,), (0,))

    def test_remap(self):
        instruction = Instruction(Gate("cx"), (0, 1))
        remapped = instruction.remap({0: 5, 1: 2})
        assert remapped.qubits == (5, 2)

    def test_predicates(self):
        assert Instruction(Gate("cx"), (0, 1)).is_two_qubit()
        assert not Instruction(Gate("x"), (0,)).is_two_qubit()
        assert Instruction(Gate("measure"), (0,), (0,)).is_measurement()
        assert Instruction(Gate("reset"), (0,)).is_reset()
        assert Instruction(Gate("barrier"), (0, 1)).is_barrier()


class TestCircuitBuilder:
    def test_chainable_builder(self):
        circuit = Circuit(2).h(0).cx(0, 1).measure(1, 0)
        assert len(circuit) == 3
        assert [instruction.name for instruction in circuit] == ["h", "cx", "measure"]

    def test_qubit_bounds_checked(self):
        with pytest.raises(CircuitError):
            Circuit(2).x(2)

    def test_clbit_bounds_checked(self):
        with pytest.raises(CircuitError):
            Circuit(2, 1).measure(0, 1)

    def test_negative_qubit_count_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(-1)

    def test_measure_all_extends_clbits(self):
        circuit = Circuit(3, 0)
        circuit.measure_all()
        assert circuit.num_clbits == 3
        assert circuit.num_measurements() == 3

    def test_barrier_defaults_to_all_qubits(self):
        circuit = Circuit(3).barrier()
        assert circuit[0].qubits == (0, 1, 2)

    def test_copy_is_independent(self):
        circuit = Circuit(2).h(0)
        clone = circuit.copy()
        clone.x(1)
        assert len(circuit) == 1
        assert len(clone) == 2

    def test_equality(self):
        a = Circuit(2).h(0).cx(0, 1)
        b = Circuit(2).h(0).cx(0, 1)
        c = Circuit(2).h(1)
        assert a == b
        assert a != c

    def test_all_builder_methods_produce_valid_instructions(self):
        circuit = Circuit(3)
        circuit.i(0).x(0).y(0).z(0).h(0).s(0).sdg(0).t(0).tdg(0).sx(0).sxdg(0)
        circuit.rx(0.1, 0).ry(0.2, 0).rz(0.3, 0).p(0.4, 0).u(0.1, 0.2, 0.3, 0).r(0.1, 0.2, 0)
        circuit.cx(0, 1).cy(0, 1).cz(0, 1).swap(0, 1).iswap(0, 1)
        circuit.cp(0.1, 0, 1).crx(0.2, 0, 1).cry(0.3, 0, 1).crz(0.4, 0, 1)
        circuit.rzz(0.5, 0, 1).rxx(0.6, 0, 1).ryy(0.7, 0, 1).zzswap(0.8, 0, 1)
        circuit.ccx(0, 1, 2).cswap(0, 1, 2)
        circuit.reset(0).barrier(0, 1).measure(0, 0)
        assert len(circuit) == 35


class TestCircuitComposition:
    def test_compose_identity_mapping(self):
        a = Circuit(3).h(0)
        b = Circuit(2).cx(0, 1)
        a.compose(b)
        assert a[1].qubits == (0, 1)

    def test_compose_with_mapping(self):
        a = Circuit(3)
        b = Circuit(2).cx(0, 1)
        a.compose(b, qubits=[2, 0])
        assert a[0].qubits == (2, 0)

    def test_compose_too_large_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(1).compose(Circuit(2).cx(0, 1))

    def test_inverse_reverses_and_inverts(self):
        circuit = Circuit(2).h(0).s(1).cx(0, 1)
        inverse = circuit.inverse()
        assert [instruction.name for instruction in inverse] == ["cx", "sdg", "h"]

    def test_inverse_of_measurement_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(1, 1).measure(0, 0).inverse()

    def test_inverse_round_trip_is_identity(self):
        circuit = Circuit(2).h(0).cx(0, 1).rz(0.3, 1)
        combined = circuit.copy().compose(circuit.inverse())
        assert np.allclose(combined.unitary(), np.eye(4), atol=1e-9)


class TestCircuitQueries:
    def test_count_ops(self):
        circuit = Circuit(2).h(0).h(1).cx(0, 1).measure_all()
        counts = circuit.count_ops()
        assert counts == {"h": 2, "cx": 1, "measure": 2}

    def test_num_gates_excluding_measurements(self):
        circuit = Circuit(2).h(0).cx(0, 1).measure_all()
        assert circuit.num_gates() == 4
        assert circuit.num_gates(include_measurements=False) == 2

    def test_two_qubit_gate_count(self):
        circuit = Circuit(3).h(0).cx(0, 1).rzz(0.1, 1, 2).ccx(0, 1, 2)
        assert circuit.num_two_qubit_gates() == 3

    def test_measured_and_active_qubits(self):
        circuit = Circuit(4).h(1).cx(1, 3).measure(3, 0)
        assert circuit.active_qubits() == (1, 3)
        assert circuit.measured_qubits() == (3,)

    def test_interaction_graph_edges(self):
        circuit = Circuit(4).cx(0, 1).cx(1, 2).cx(0, 1)
        graph = circuit.interaction_graph()
        assert set(graph.edges()) == {(0, 1), (1, 2)}
        assert graph.number_of_nodes() == 4

    def test_interaction_graph_of_three_qubit_gate(self):
        graph = Circuit(3).ccx(0, 1, 2).interaction_graph()
        assert graph.number_of_edges() == 3

    def test_depth_of_ladder(self):
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        assert circuit.depth() == 3

    def test_depth_of_parallel_layer(self):
        circuit = Circuit(4).h(0).h(1).h(2).h(3)
        assert circuit.depth() == 1

    def test_two_qubit_critical_path_serial(self):
        circuit = Circuit(3).cx(0, 1).cx(1, 2).cx(0, 1)
        on_path, length = circuit.two_qubit_critical_path()
        assert length == 3
        assert on_path == 3

    def test_num_resets(self):
        circuit = Circuit(2).reset(0).reset(1)
        assert circuit.num_resets() == 2


class TestCircuitPropertyBased:
    @given(num_qubits=st.integers(2, 6), seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_depth_never_exceeds_gate_count(self, num_qubits, seed):
        from repro.circuits import random_clifford_circuit

        circuit = random_clifford_circuit(num_qubits, 20, rng=seed)
        assert 0 < circuit.depth() <= len(circuit)

    @given(num_qubits=st.integers(2, 5), seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_interaction_graph_degree_bounded(self, num_qubits, seed):
        from repro.circuits import random_clifford_circuit

        circuit = random_clifford_circuit(num_qubits, 30, rng=seed)
        graph = circuit.interaction_graph()
        assert max(dict(graph.degree()).values()) <= num_qubits - 1
