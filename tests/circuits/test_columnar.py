"""Guards for the columnar (packed) circuit IR.

Three concerns:

* **Losslessness** — ``Circuit -> pack -> unpack`` is an exact instruction
  round trip, exercised over every registered gate arity, measure/reset,
  narrow and wide barriers, and randomized instruction streams.
* **Opcode-table stability** — opcode ids and :data:`OPCODE_TABLE_DIGEST`
  are pinned; a reorder or mid-table insertion (which would silently change
  every persisted fingerprint) fails loudly here instead.
* **Cache semantics** — ``Circuit.packed()`` returns one shared immutable
  object until the circuit mutates, survives ``copy()`` without re-packing,
  and re-packs when register sizes drift out from under the cache.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    BARRIER_OP,
    Circuit,
    Gate,
    Instruction,
    MEASURE_OP,
    OP_ARITY,
    OP_IS_UNITARY,
    OP_NAMES,
    OP_NUM_PARAMS,
    OPCODE_TABLE_DIGEST,
    OPCODES,
    PackedCircuit,
    QUBIT_SLOTS,
    RESET_OP,
    pack_circuit,
    random_clifford_circuit,
)
from repro.circuits.gates import GATE_DEFINITIONS


def _random_circuit(num_qubits: int, seed: int, *, barriers: bool = True) -> Circuit:
    """Instruction stream covering every packing shape, from a seed."""
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, num_qubits, name=f"rand{seed}")
    gate_names = [
        name
        for name, definition in GATE_DEFINITIONS.items()
        if definition.is_unitary and 0 < definition.num_qubits <= num_qubits
    ]
    for _ in range(int(rng.integers(0, 40))):
        roll = rng.random()
        if roll < 0.70:
            name = gate_names[int(rng.integers(len(gate_names)))]
            definition = GATE_DEFINITIONS[name]
            qubits = rng.choice(num_qubits, size=definition.num_qubits, replace=False)
            params = tuple(float(p) for p in rng.uniform(-np.pi, np.pi, definition.num_params))
            circuit.add_gate(name, [int(q) for q in qubits], params)
        elif roll < 0.82:
            circuit.measure(int(rng.integers(num_qubits)), int(rng.integers(num_qubits)))
        elif roll < 0.90:
            circuit.reset(int(rng.integers(num_qubits)))
        elif barriers:
            count = int(rng.integers(1, num_qubits + 1))
            qubits = rng.choice(num_qubits, size=count, replace=False)
            circuit.barrier(*(int(q) for q in qubits))
    return circuit


# ---------------------------------------------------------------------------
# opcode table stability
# ---------------------------------------------------------------------------
class TestOpcodeTable:
    def test_ids_cover_every_definition_contiguously(self):
        assert list(OPCODES) == list(GATE_DEFINITIONS)
        assert sorted(OPCODES.values()) == list(range(len(GATE_DEFINITIONS)))
        assert OP_NAMES == tuple(GATE_DEFINITIONS)

    def test_pinned_ids(self):
        # These ids are persisted (via the fingerprint digest); moving them is
        # a migration, not a refactor — see docs/ir.md before touching this.
        assert len(OPCODES) == 35
        assert OPCODES["id"] == 0
        assert MEASURE_OP == OPCODES["measure"] == 32
        assert RESET_OP == OPCODES["reset"] == 33
        assert BARRIER_OP == OPCODES["barrier"] == 34

    def test_table_digest_pinned(self):
        # Changing GATE_DEFINITIONS (new gate, reorder, arity change) changes
        # this digest and with it every circuit fingerprint and store key.
        # That is deliberate — but it must be done knowingly: update the pin
        # together with FINGERPRINT_VERSION / KEY_SCHEMA per docs/ir.md.
        assert OPCODE_TABLE_DIGEST == "34919697ea062826f5eeccd514313c5e79cd034e"

    def test_per_opcode_arrays_match_definitions(self):
        for name, definition in GATE_DEFINITIONS.items():
            opcode = OPCODES[name]
            assert OP_ARITY[opcode] == definition.num_qubits
            assert OP_NUM_PARAMS[opcode] == definition.num_params
            assert OP_IS_UNITARY[opcode] == definition.is_unitary
        assert not OP_IS_UNITARY[MEASURE_OP]
        assert not OP_IS_UNITARY[RESET_OP]
        assert not OP_IS_UNITARY[BARRIER_OP]


# ---------------------------------------------------------------------------
# round trip
# ---------------------------------------------------------------------------
class TestRoundTrip:
    def test_empty_circuit(self):
        circuit = Circuit(3, 2, name="empty")
        packed = circuit.packed()
        assert len(packed) == 0
        assert packed.num_qubits == 3
        assert packed.num_clbits == 2
        assert packed.unpack() == circuit
        assert packed.unpack().name == "empty"

    def test_every_gate_arity_round_trips(self):
        circuit = Circuit(4, 4)
        params_pool = (0.1, -1.25, 2.5)
        for name, definition in GATE_DEFINITIONS.items():
            if not definition.is_unitary or definition.num_qubits == 0:
                continue
            qubits = list(range(definition.num_qubits))
            circuit.add_gate(name, qubits, params_pool[: definition.num_params])
        circuit.measure(0, 3)
        circuit.reset(2)
        circuit.barrier(1, 3)
        packed = circuit.packed()
        rebuilt = packed.unpack()
        assert rebuilt == circuit
        assert [i.gate.params for i in rebuilt] == [i.gate.params for i in circuit]
        assert [i.clbits for i in rebuilt] == [i.clbits for i in circuit]

    def test_wide_barrier_overflows_to_pool(self):
        circuit = Circuit(6)
        circuit.h(0).cx(0, 1)
        circuit.barrier()  # 6 operands > QUBIT_SLOTS
        circuit.barrier(4, 2)  # narrow barrier stays in fixed slots
        packed = circuit.packed()
        assert packed.has_wide_rows
        assert packed.wide_rows.tolist() == [2]
        # the wide row's fixed-width slots are all sentinels
        assert packed.qubits[2].tolist() == [-1] * QUBIT_SLOTS
        assert packed.row_qubits(2) == (0, 1, 2, 3, 4, 5)
        assert packed.row_qubits(3) == (4, 2)
        assert packed.unpack() == circuit

    def test_measure_clbits_preserved(self):
        circuit = Circuit(3, 3)
        circuit.h(0).measure(0, 2).measure(1, 0)
        rebuilt = circuit.packed().unpack()
        assert [i.clbits for i in rebuilt] == [(), (2,), (0,)]

    @given(num_qubits=st.integers(2, 6), seed=st.integers(0, 2000))
    @settings(max_examples=80, deadline=None)
    def test_randomized_round_trip(self, num_qubits, seed):
        circuit = _random_circuit(num_qubits, seed)
        packed = circuit.packed()
        rebuilt = packed.unpack()
        assert rebuilt == circuit
        assert rebuilt.num_clbits == circuit.num_clbits
        assert rebuilt.name == circuit.name
        # exact params and clbits (Circuit.__eq__ already compares these, but
        # pin them explicitly — they are the lossy-prone columns)
        for original, copy in zip(circuit, rebuilt):
            assert copy.gate.params == original.gate.params
            assert copy.qubits == original.qubits
            assert copy.clbits == original.clbits
        # a re-pack of the rebuilt circuit is byte-identical
        repacked = rebuilt.packed()
        for (label, buffer), (_, other) in zip(packed.buffers(), repacked.buffers()):
            assert buffer.tobytes() == other.tobytes(), label

    def test_clifford_stream_round_trips(self):
        circuit = random_clifford_circuit(5, 60, rng=7).measure_all()
        assert circuit.packed().unpack() == circuit


# ---------------------------------------------------------------------------
# row access
# ---------------------------------------------------------------------------
class TestRowAccess:
    def test_rows_mirror_instructions(self):
        circuit = _random_circuit(5, seed=11)
        circuit.barrier()  # force a wide row
        packed = circuit.packed()
        rows = list(packed.iter_rows())
        assert len(rows) == len(circuit)
        for (row, opcode, qubits, params, clbit), instruction in zip(rows, circuit):
            assert OP_NAMES[opcode] == instruction.gate.name
            assert qubits == instruction.qubits
            assert params == instruction.gate.params
            assert clbit == (instruction.clbits[0] if instruction.clbits else -1)
            assert packed.row_qubits(row) == instruction.qubits
            assert packed.row_params(row) == instruction.gate.params

    def test_buffers_are_read_only(self):
        packed = _random_circuit(4, seed=3).packed()
        for label, buffer in packed.buffers():
            assert not buffer.flags.writeable, label
        with pytest.raises(ValueError):
            packed.opcodes[0] = 1


# ---------------------------------------------------------------------------
# packed() cache semantics
# ---------------------------------------------------------------------------
class TestPackedCache:
    def test_repeated_calls_share_one_object(self):
        circuit = _random_circuit(4, seed=5)
        assert circuit.packed() is circuit.packed()

    def test_append_invalidates(self):
        circuit = Circuit(2)
        circuit.h(0)
        before = circuit.packed()
        circuit.cx(0, 1)
        after = circuit.packed()
        assert after is not before
        assert len(before) == 1 and len(after) == 2
        assert after.unpack() == circuit

    def test_register_growth_invalidates(self):
        # measure_all widens num_clbits; the cache validates register sizes
        # so the stale pack is never served even without an append in between.
        circuit = Circuit(3, 0)
        circuit.h(0)
        stale = circuit.packed()
        assert stale.num_clbits == 0
        circuit.measure_all()
        fresh = circuit.packed()
        assert fresh.num_clbits == 3
        assert fresh.unpack() == circuit

    def test_copy_shares_cached_pack(self):
        circuit = _random_circuit(4, seed=9)
        packed = circuit.packed()
        clone = circuit.copy()
        assert clone.packed() is packed
        # mutating the clone re-packs the clone only
        clone.x(0)
        assert clone.packed() is not packed
        assert circuit.packed() is packed

    def test_pack_circuit_matches_accessor(self):
        circuit = _random_circuit(4, seed=13)
        direct = pack_circuit(circuit)
        cached = circuit.packed()
        assert isinstance(direct, PackedCircuit)
        for (label, buffer), (_, other) in zip(direct.buffers(), cached.buffers()):
            assert buffer.tobytes() == other.tobytes(), label


# ---------------------------------------------------------------------------
# O(1) structural counters
# ---------------------------------------------------------------------------
class _ExplodingInstructions:
    """Stand-in for ``Circuit._instructions`` that fails on any traversal."""

    def __iter__(self):
        raise AssertionError("counter re-walked the instruction list")

    def __len__(self):
        raise AssertionError("counter re-walked the instruction list")

    def __getitem__(self, index):
        raise AssertionError("counter re-walked the instruction list")


class TestCounters:
    def _recount(self, circuit):
        multi = sum(
            1
            for i in circuit
            if len(i.qubits) >= 2 and not (i.is_measurement() or i.is_reset() or i.is_barrier())
        )
        measures = sum(1 for i in circuit if i.is_measurement())
        resets = sum(1 for i in circuit if i.is_reset())
        return multi, measures, resets

    @given(num_qubits=st.integers(2, 6), seed=st.integers(0, 2000))
    @settings(max_examples=60, deadline=None)
    def test_tallies_match_recount(self, num_qubits, seed):
        circuit = _random_circuit(num_qubits, seed)
        multi, measures, resets = self._recount(circuit)
        assert circuit.num_two_qubit_gates() == multi
        assert circuit.num_measurements() == measures
        assert circuit.num_resets() == resets

    def test_tallies_survive_copy_extend_compose(self):
        circuit = _random_circuit(5, seed=21)
        other = _random_circuit(5, seed=22)
        combined = circuit.copy()
        combined.extend(other.instructions)
        composed = circuit.copy().compose(other)
        for built in (circuit.copy(), combined, composed):
            assert built.num_two_qubit_gates() == self._recount(built)[0]
            assert built.num_measurements() == self._recount(built)[1]
            assert built.num_resets() == self._recount(built)[2]

    def test_counters_never_rewalk_instructions(self):
        # Regression guard for the O(1) counters: once built, repeated counter
        # calls must answer from the append-maintained tallies without touching
        # the instruction list at all.
        circuit = _random_circuit(5, seed=33)
        expected = (
            circuit.num_two_qubit_gates(),
            circuit.num_measurements(),
            circuit.num_resets(),
        )
        circuit._instructions = _ExplodingInstructions()
        observed = (
            circuit.num_two_qubit_gates(),
            circuit.num_measurements(),
            circuit.num_resets(),
        )
        assert observed == expected


# ---------------------------------------------------------------------------
# direct PackedCircuit construction (pack_circuit is not the only producer)
# ---------------------------------------------------------------------------
class TestUnpackFromForeignBuffers:
    def test_hand_built_pack_unpacks(self):
        packed = PackedCircuit(
            num_qubits=2,
            num_clbits=1,
            opcodes=np.array([OPCODES["h"], OPCODES["rzz"], MEASURE_OP], dtype=np.uint16),
            qubits=np.array([[0, -1, -1], [0, 1, -1], [1, -1, -1]], dtype=np.int32),
            clbits=np.array([-1, -1, 0], dtype=np.int32),
            param_offsets=np.array([0, 0, 1, 1], dtype=np.int64),
            params=np.array([0.5], dtype=np.float64),
            wide_rows=np.zeros(0, dtype=np.int64),
            wide_offsets=np.zeros(1, dtype=np.int64),
            wide_qubits=np.zeros(0, dtype=np.int32),
        )
        circuit = packed.unpack()
        expected = Circuit(2, 1).h(0).rzz(0.5, 0, 1).measure(1, 0)
        assert circuit == expected
        assert circuit[1].gate == Gate("rzz", (0.5,))
        assert isinstance(circuit[2], Instruction)
