"""Tests for OpenQASM 2.0 emission and parsing."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, circuit_from_qasm, circuit_to_qasm, random_clifford_circuit
from repro.exceptions import QasmError
from repro.simulation import circuit_unitary
from repro.utils import equivalent_up_to_global_phase


class TestEmission:
    def test_header_and_registers(self):
        qasm = circuit_to_qasm(Circuit(3, 2))
        assert qasm.startswith("OPENQASM 2.0;")
        assert "qreg q[3];" in qasm
        assert "creg c[2];" in qasm

    def test_gate_statements(self):
        circuit = Circuit(2).h(0).cx(0, 1).rz(math.pi / 2, 1)
        qasm = circuit_to_qasm(circuit)
        assert "h q[0];" in qasm
        assert "cx q[0], q[1];" in qasm
        assert "rz(pi/2) q[1];" in qasm

    def test_measure_reset_barrier(self):
        circuit = Circuit(2, 2).reset(0).barrier(0, 1).measure(0, 0)
        qasm = circuit_to_qasm(circuit)
        assert "reset q[0];" in qasm
        assert "barrier q[0], q[1];" in qasm
        assert "measure q[0] -> c[0];" in qasm

    def test_zzswap_is_expanded(self):
        circuit = Circuit(2).zzswap(0.5, 0, 1)
        qasm = circuit_to_qasm(circuit)
        assert "rzz" in qasm and "swap" in qasm

    def test_pi_formatting(self):
        circuit = Circuit(1).rz(math.pi, 0).rz(-math.pi / 4, 0).rz(0.123, 0)
        qasm = circuit_to_qasm(circuit)
        assert "rz(pi)" in qasm
        assert "rz(-pi/4)" in qasm
        assert "0.123" in qasm


class TestParsing:
    def test_round_trip_simple(self):
        circuit = Circuit(3, 3).h(0).cx(0, 1).rzz(0.4, 1, 2).measure_all()
        parsed = Circuit.from_qasm(circuit.to_qasm())
        assert parsed.num_qubits == 3
        assert parsed.count_ops() == circuit.count_ops()

    def test_round_trip_preserves_unitary(self):
        circuit = Circuit(3).h(0).cx(0, 1).rz(0.3, 2).ryy(1.2, 0, 2).t(1)
        parsed = Circuit.from_qasm(circuit.to_qasm())
        assert equivalent_up_to_global_phase(circuit_unitary(circuit), circuit_unitary(parsed))

    def test_parse_u3_and_u1_aliases(self):
        qasm = 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\nu3(0.1,0.2,0.3) q[0];\nu1(0.5) q[0];\n'
        circuit = circuit_from_qasm(qasm)
        assert [i.name for i in circuit] == ["u", "p"]

    def test_parse_pi_expressions(self):
        qasm = 'OPENQASM 2.0;\nqreg q[1];\nrz(3*pi/4) q[0];\nrz(-pi) q[0];\n'
        circuit = circuit_from_qasm(qasm)
        assert circuit[0].params[0] == pytest.approx(3 * math.pi / 4)
        assert circuit[1].params[0] == pytest.approx(-math.pi)

    def test_parse_comments_ignored(self):
        qasm = 'OPENQASM 2.0;\n// a comment\nqreg q[2];\nh q[0]; // inline\ncx q[0], q[1];\n'
        circuit = circuit_from_qasm(qasm)
        assert len(circuit) == 2

    def test_unknown_gate_rejected(self):
        with pytest.raises(QasmError):
            circuit_from_qasm("OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];\n")

    def test_malicious_parameter_rejected(self):
        with pytest.raises(QasmError):
            circuit_from_qasm("OPENQASM 2.0;\nqreg q[1];\nrz(__import__) q[0];\n")

    def test_unknown_identifier_rejected(self):
        with pytest.raises(QasmError):
            circuit_from_qasm("OPENQASM 2.0;\nqreg q[1];\nrz(tau) q[0];\n")

    def test_barrier_without_arguments(self):
        qasm = "OPENQASM 2.0;\nqreg q[2];\nbarrier q;\nh q[0];\n"
        circuit = circuit_from_qasm(qasm)
        assert circuit[0].is_barrier()
        assert circuit[0].qubits == (0, 1)


class TestRoundTripPropertyBased:
    @given(num_qubits=st.integers(2, 5), seed=st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_random_clifford_round_trip(self, num_qubits, seed):
        circuit = random_clifford_circuit(num_qubits, 25, rng=seed)
        parsed = Circuit.from_qasm(circuit.to_qasm())
        assert parsed.count_ops() == circuit.count_ops()
        assert parsed.num_qubits == circuit.num_qubits
