"""Tests for the random circuit generators."""

import numpy as np
import pytest

from repro.circuits import (
    ghz_ladder,
    quantum_volume_circuit,
    random_clifford_circuit,
    random_layered_circuit,
    random_single_qubit_layer,
)


class TestGenerators:
    def test_ghz_ladder_structure(self):
        circuit = ghz_ladder(5)
        assert circuit.count_ops() == {"h": 1, "cx": 4}
        assert circuit.num_qubits == 5

    def test_ghz_ladder_with_measurement(self):
        circuit = ghz_ladder(4, measure=True)
        assert circuit.num_measurements() == 4

    def test_quantum_volume_square_shape(self):
        circuit = quantum_volume_circuit(4, rng=0)
        assert circuit.num_qubits == 4
        assert circuit.num_measurements() == 4
        # 4 layers x 2 pairs per layer
        assert circuit.count_ops()["cx"] == 8

    def test_quantum_volume_reproducible(self):
        a = quantum_volume_circuit(4, rng=7)
        b = quantum_volume_circuit(4, rng=7)
        assert a == b

    def test_random_clifford_gate_count(self):
        circuit = random_clifford_circuit(3, 40, rng=1)
        assert circuit.num_gates() == 40

    def test_random_clifford_two_qubit_fraction(self):
        circuit = random_clifford_circuit(5, 400, two_qubit_fraction=0.5, rng=3)
        fraction = circuit.num_two_qubit_gates() / circuit.num_gates()
        assert 0.35 < fraction < 0.65

    def test_random_layered_respects_coupling(self):
        coupling = [(0, 1), (1, 2)]
        circuit = random_layered_circuit(3, 4, coupling=coupling, rng=2)
        for instruction in circuit:
            if instruction.is_two_qubit():
                assert tuple(sorted(instruction.qubits)) in {(0, 1), (1, 2)}

    def test_random_single_qubit_layer(self):
        circuit = random_single_qubit_layer(6, rng=5)
        assert circuit.depth() == 1
        assert circuit.num_gates() == 6
