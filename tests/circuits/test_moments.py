"""Tests for ASAP moment scheduling and the liveness matrix."""

import numpy as np
import pytest

from repro.circuits import Circuit, circuit_depth, circuit_moments, liveness_matrix


class TestMoments:
    def test_parallel_gates_share_a_moment(self):
        circuit = Circuit(3).h(0).h(1).h(2)
        moments = circuit_moments(circuit)
        assert len(moments) == 1
        assert len(moments[0]) == 3

    def test_dependent_gates_are_serialised(self):
        circuit = Circuit(2).h(0).cx(0, 1).x(1)
        moments = circuit_moments(circuit)
        assert len(moments) == 3

    def test_independent_chains_interleave(self):
        circuit = Circuit(4).cx(0, 1).cx(2, 3).cx(1, 2)
        moments = circuit_moments(circuit)
        assert len(moments) == 2
        assert len(moments[0]) == 2

    def test_barrier_forces_synchronisation(self):
        without_barrier = Circuit(2).h(0).x(1).x(1)
        with_barrier = Circuit(2).h(0).barrier().x(1).x(1)
        assert circuit_depth(without_barrier) == 2
        assert circuit_depth(with_barrier) == 3

    def test_barrier_does_not_occupy_a_layer(self):
        circuit = Circuit(2).barrier().h(0)
        assert circuit_depth(circuit) == 1

    def test_empty_circuit_depth_zero(self):
        assert circuit_depth(Circuit(3)) == 0

    def test_measure_counts_toward_depth(self):
        circuit = Circuit(1, 1).h(0).measure(0, 0)
        assert circuit_depth(circuit) == 2


class TestLivenessMatrix:
    def test_shape(self):
        circuit = Circuit(3).h(0).cx(0, 1)
        matrix = liveness_matrix(circuit)
        assert matrix.shape == (3, 2)

    def test_fully_active_circuit(self):
        circuit = Circuit(2).h(0).h(1).cx(0, 1)
        matrix = liveness_matrix(circuit)
        assert matrix.sum() == 4
        assert matrix.shape == (2, 2)

    def test_idle_qubit_rows_are_zero(self):
        circuit = Circuit(3).h(0).h(0)
        matrix = liveness_matrix(circuit)
        assert matrix[1].sum() == 0
        assert matrix[2].sum() == 0
        assert matrix[0].sum() == 2

    def test_empty_circuit(self):
        matrix = liveness_matrix(Circuit(2))
        assert matrix.shape == (2, 0)

    def test_entries_are_binary(self):
        circuit = Circuit(3).h(0).cx(0, 1).ccx(0, 1, 2).measure_all()
        matrix = liveness_matrix(circuit)
        assert set(np.unique(matrix)).issubset({0, 1})
