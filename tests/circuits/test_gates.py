"""Unit tests for gate definitions and matrices."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.circuits.gates import (
    GATE_DEFINITIONS,
    Gate,
    gate_matrix,
    is_known_gate,
    standard_gate,
)
from repro.exceptions import GateError
from repro.utils import equivalent_up_to_global_phase


UNITARY_GATES = [name for name, d in GATE_DEFINITIONS.items() if d.is_unitary]


def _example_params(name):
    return tuple(0.37 * (i + 1) for i in range(GATE_DEFINITIONS[name].num_params))


class TestGateConstruction:
    def test_unknown_gate_rejected(self):
        with pytest.raises(GateError):
            Gate("bogus")

    def test_wrong_parameter_count_rejected(self):
        with pytest.raises(GateError):
            Gate("rx")
        with pytest.raises(GateError):
            Gate("h", (0.1,))

    def test_params_coerced_to_float(self):
        gate = Gate("rx", (1,))
        assert gate.params == (1.0,)
        assert isinstance(gate.params[0], float)

    def test_is_known_gate(self):
        assert is_known_gate("cx")
        assert not is_known_gate("nope")

    def test_standard_gate_constructor(self):
        assert standard_gate("rz", 0.5) == Gate("rz", (0.5,))

    def test_gates_are_hashable(self):
        assert len({Gate("x"), Gate("x"), Gate("y")}) == 2


class TestGateMatrices:
    @pytest.mark.parametrize("name", UNITARY_GATES)
    def test_all_matrices_are_unitary(self, name):
        matrix = gate_matrix(name, *_example_params(name))
        dim = matrix.shape[0]
        assert matrix.shape == (dim, dim)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-10)

    @pytest.mark.parametrize("name", UNITARY_GATES)
    def test_matrix_dimension_matches_qubit_count(self, name):
        matrix = gate_matrix(name, *_example_params(name))
        assert matrix.shape[0] == 2 ** GATE_DEFINITIONS[name].num_qubits

    def test_cx_flips_target_when_control_set(self):
        cx = gate_matrix("cx")
        # |10> (control=1, target=0) -> |11>
        state = np.zeros(4)
        state[2] = 1.0
        assert np.allclose(cx @ state, [0, 0, 0, 1])

    def test_swap_exchanges_basis_states(self):
        swap = gate_matrix("swap")
        state = np.zeros(4)
        state[1] = 1.0  # |01>
        assert np.allclose(swap @ state, [0, 0, 1, 0])

    def test_rz_is_diagonal_phase(self):
        theta = 0.7
        rz = gate_matrix("rz", theta)
        assert np.allclose(np.abs(np.diag(rz)), 1.0)
        assert np.isclose(rz[1, 1] / rz[0, 0], np.exp(1j * theta))

    def test_h_squared_is_identity(self):
        h = gate_matrix("h")
        assert np.allclose(h @ h, np.eye(2), atol=1e-12)

    def test_rzz_diagonal(self):
        rzz = gate_matrix("rzz", 0.4)
        assert np.allclose(rzz, np.diag(np.diag(rzz)))

    def test_zzswap_is_swap_times_rzz(self):
        theta = 0.9
        expected = gate_matrix("swap") @ gate_matrix("rzz", theta)
        assert np.allclose(gate_matrix("zzswap", theta), expected)

    def test_measure_has_no_matrix(self):
        with pytest.raises(GateError):
            Gate("measure").matrix()

    def test_barrier_has_no_matrix(self):
        with pytest.raises(GateError):
            Gate("barrier").matrix()


class TestGateInverses:
    @pytest.mark.parametrize(
        "name",
        [n for n in UNITARY_GATES if n not in ("iswap", "zzswap")],
    )
    def test_inverse_matrix_is_conjugate_transpose(self, name):
        gate = Gate(name, _example_params(name))
        inverse = gate.inverse()
        product = inverse.matrix() @ gate.matrix()
        assert equivalent_up_to_global_phase(product, np.eye(product.shape[0]))

    def test_self_inverse_gates(self):
        assert Gate("x").inverse() == Gate("x")
        assert Gate("cx").inverse() == Gate("cx")

    def test_s_inverse_is_sdg(self):
        assert Gate("s").inverse() == Gate("sdg")

    def test_rotation_inverse_negates_angle(self):
        assert Gate("rx", (0.3,)).inverse() == Gate("rx", (-0.3,))

    def test_u_inverse(self):
        gate = Gate("u", (0.2, 0.5, -0.7))
        product = gate.inverse().matrix() @ gate.matrix()
        assert equivalent_up_to_global_phase(product, np.eye(2))

    def test_measure_has_no_inverse(self):
        with pytest.raises(GateError):
            Gate("measure").inverse()

    def test_zzswap_inverse_not_defined(self):
        with pytest.raises(GateError):
            Gate("zzswap", (0.2,)).inverse()


class TestGatePropertyBased:
    @given(theta=st.floats(-10, 10, allow_nan=False))
    def test_rz_composition(self, theta):
        combined = gate_matrix("rz", theta) @ gate_matrix("rz", -theta)
        assert np.allclose(combined, np.eye(2), atol=1e-9)

    @given(
        theta=st.floats(-6.3, 6.3),
        phi=st.floats(-6.3, 6.3),
        lam=st.floats(-6.3, 6.3),
    )
    def test_u_gate_always_unitary(self, theta, phi, lam):
        matrix = gate_matrix("u", theta, phi, lam)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(2), atol=1e-9)

    @given(theta=st.floats(-6.3, 6.3))
    def test_rxx_ryy_rzz_commute(self, theta):
        """The two-qubit Ising rotations about different axes all commute with themselves."""
        rzz = gate_matrix("rzz", theta)
        assert np.allclose(rzz @ rzz.conj().T, np.eye(4), atol=1e-9)
