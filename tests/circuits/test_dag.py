"""Tests for the dependency DAG and two-qubit critical path."""

import pytest

from repro.circuits import (
    Circuit,
    circuit_dag,
    critical_path_length,
    two_qubit_critical_path,
)


class TestCircuitDag:
    def test_dag_node_per_instruction(self):
        circuit = Circuit(2).h(0).cx(0, 1).x(1)
        dag = circuit_dag(circuit)
        assert dag.number_of_nodes() == 3

    def test_barriers_are_not_nodes(self):
        circuit = Circuit(2).h(0).barrier().x(0)
        dag = circuit_dag(circuit)
        assert dag.number_of_nodes() == 2

    def test_edges_follow_qubit_dependencies(self):
        circuit = Circuit(2).h(0).x(1).cx(0, 1)
        dag = circuit_dag(circuit)
        assert (0, 2) in dag.edges()
        assert (1, 2) in dag.edges()
        assert (0, 1) not in dag.edges()

    def test_dag_is_acyclic(self):
        import networkx as nx

        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2).cx(0, 2)
        assert nx.is_directed_acyclic_graph(circuit_dag(circuit))


class TestCriticalPath:
    def test_serial_chain(self):
        circuit = Circuit(1).h(0).x(0).z(0)
        assert critical_path_length(circuit) == 3

    def test_parallel_layer(self):
        circuit = Circuit(3).h(0).h(1).h(2)
        assert critical_path_length(circuit) == 1

    def test_two_qubit_gates_on_path(self):
        # Chain of CNOTs: every one of them is on the critical path.
        circuit = Circuit(3).cx(0, 1).cx(1, 2).cx(0, 1)
        on_path, length = two_qubit_critical_path(circuit)
        assert (on_path, length) == (3, 3)

    def test_single_qubit_padding_not_counted_as_two_qubit(self):
        circuit = Circuit(2).h(0).h(0).h(0).cx(0, 1)
        on_path, length = two_qubit_critical_path(circuit)
        assert length == 4
        assert on_path == 1

    def test_path_prefers_more_two_qubit_gates_on_tie(self):
        # Two chains of equal length; one has two CX, the other one CX and single-qubit gates.
        circuit = Circuit(4)
        circuit.cx(0, 1).cx(0, 1)           # chain A: 2 two-qubit gates
        circuit.h(2).h(2).x(3)              # chain B: shorter
        on_path, length = two_qubit_critical_path(circuit)
        assert on_path == 2
        assert length == 2

    def test_empty_circuit(self):
        assert two_qubit_critical_path(Circuit(2)) == (0, 0)

    def test_ghz_ladder_all_cnots_on_path(self):
        circuit = Circuit(5).h(0)
        for q in range(4):
            circuit.cx(q, q + 1)
        on_path, length = two_qubit_critical_path(circuit)
        assert on_path == 4
        assert length == 5
