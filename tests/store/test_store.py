"""Tests for the content-addressed result store: keys, rows, migrations."""

import sqlite3

import pytest

from repro.exceptions import SchemaVersionError, StoreError
from repro.execution.results import BenchmarkRun
from repro.store import (
    KEY_SCHEMA,
    PAYLOAD_VERSION,
    STORE_SCHEMA_VERSION,
    ResultStore,
    content_key,
    key_payload,
)
from repro.suite.results import SpecOutcome


def make_run(benchmark="ghz[3q]", device="IonQ-11Q", scores=(0.9, 0.91)):
    return BenchmarkRun(
        benchmark=benchmark,
        family="ghz",
        device=device,
        scores=list(scores),
        features={"pc": 0.5},
        typical={"num_qubits": 3},
        compiled_two_qubit_gates=2,
        compiled_depth=9,
        swap_count=0,
        shots=100,
        backend="trajectory",
        placement="noise_aware",
        pipeline="abc123",
        mitigation="",
        seconds=0.5,
    )


def make_outcome(key="ghz(num_qubits=3)|IonQ-11Q/default/O1/noise_aware|raw", index=0):
    return SpecOutcome(
        key=key,
        spec={"family": "ghz", "params": {"num_qubits": 3}},
        device="IonQ-11Q",
        mitigation="raw",
        index=index,
        status="ok",
        run=make_run(),
        seconds=0.5,
    )


class TestContentKey:
    def test_deterministic_and_order_independent(self):
        a = content_key("ghz(num_qubits=3)", "IonQ-11Q", {"name": "trajectory"},
                        "pipe", "noise", "raw", 100, 2, 7)
        b = content_key("ghz(num_qubits=3)", "IonQ-11Q", {"name": "trajectory"},
                        "pipe", "noise", "raw", 100, 2, 7)
        assert a == b
        assert len(a) == 64

    def test_every_input_is_score_affecting(self):
        base = dict(spec="ghz(num_qubits=3)", device="IonQ-11Q",
                    backend={"name": "trajectory"}, pipeline="pipe",
                    noise="noise", mitigation="raw", shots=100,
                    repetitions=2, seed=7)
        reference = content_key(**base)
        for field, changed in [
            ("spec", "ghz(num_qubits=5)"),
            ("device", "IBM-Casablanca-7Q"),
            ("backend", {"name": "statevector"}),
            ("pipeline", "other"),
            ("noise", "ideal"),
            ("mitigation", "zne"),
            ("shots", 200),
            ("repetitions", 3),
            ("seed", 8),
        ]:
            variant = dict(base, **{field: changed})
            assert content_key(**variant) != reference, field

    def test_key_payload_carries_schema(self):
        payload = key_payload("s", "d", {}, "p", "n", "raw", 1, 1, None)
        assert payload["key_schema"] == KEY_SCHEMA


class TestResultStore:
    def test_get_put_roundtrip(self):
        with ResultStore() as store:
            run = make_run()
            store.put_run("k1", run)
            assert store.get_run("k1") == run
            assert store.get_run("absent") is None
            assert store.stats() == {
                "hits": 1, "misses": 1, "puts": 1, "evictions": 0, "rows": 1,
            }

    def test_outcome_roundtrip(self):
        with ResultStore() as store:
            outcome = make_outcome()
            store.put_outcome("k1", outcome, scenario="figure2")
            assert store.get_outcome("k1") == outcome

    def test_kinds_do_not_collide(self):
        with ResultStore() as store:
            store.put_run("k1", make_run())
            store.put_outcome("k1", make_outcome())
            assert len(store) == 2
            assert store.get_run("k1") is not None
            assert store.get_outcome("k1") is not None

    def test_idempotent_reput(self):
        with ResultStore() as store:
            run = make_run()
            store.put_run("k1", run)
            store.put_run("k1", run)
            assert len(store) == 1
            assert store.get_run("k1") == run

    def test_contains_and_len(self):
        with ResultStore() as store:
            assert "k1" not in store
            store.put_run("k1", make_run())
            assert "k1" in store
            assert len(store) == 1

    def test_query_filters(self):
        with ResultStore() as store:
            store.put_outcome("k1", make_outcome(index=0), scenario="figure2")
            other = make_outcome(key="ghz(num_qubits=5)|IonQ-11Q/default/O1/noise_aware|zne")
            other.mitigation = "zne"
            store.put_outcome("k2", other, scenario="mitigated_scores")
            assert len(store.query(kind="outcome")) == 2
            assert len(store.query(kind="outcome", scenario="figure2")) == 1
            assert len(store.query(kind="outcome", mitigation="zne")) == 1
            assert len(store.query(kind="outcome", device="nope")) == 0
            rows = store.query(kind="outcome", limit=1)
            assert len(rows) == 1
            assert rows[0]["payload"]["schema_version"] == 2

    def test_lru_eviction(self):
        with ResultStore(max_rows=2) as store:
            store.put("a", "run", {"v": 1})
            store.put("b", "run", {"v": 2})
            store.get("a", "run")  # touch a so b is the LRU victim
            store.put("c", "run", {"v": 3})
            assert len(store) == 2
            assert "b" not in store
            assert "a" in store and "c" in store
            assert store.stats()["evictions"] == 1

    def test_max_rows_validation(self):
        with pytest.raises(StoreError):
            ResultStore(max_rows=0)

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "results.sqlite"
        with ResultStore(path) as store:
            store.put_run("k1", make_run())
        with ResultStore(path) as store:
            assert store.get_run("k1") == make_run()

    def test_future_db_schema_rejected(self, tmp_path):
        path = tmp_path / "future.sqlite"
        connection = sqlite3.connect(path)
        connection.execute(f"PRAGMA user_version = {STORE_SCHEMA_VERSION + 1}")
        connection.close()
        with pytest.raises(SchemaVersionError, match="newer release"):
            ResultStore(path)

    def test_future_payload_version_rejected(self, tmp_path):
        path = tmp_path / "payload.sqlite"
        with ResultStore(path) as store:
            store.put("k1", "run", {"v": 1})
            store._connection().execute(
                "UPDATE results SET schema_version = ?", (PAYLOAD_VERSION + 1,)
            )
            with pytest.raises(SchemaVersionError, match="payload version"):
                store.get("k1", "run")

    def test_migrations_upgrade_v1_database(self, tmp_path):
        path = tmp_path / "old.sqlite"
        with ResultStore(path) as store:
            store.put_run("k1", make_run())
        connection = sqlite3.connect(path)
        connection.execute("DROP INDEX IF EXISTS idx_results_query")
        connection.execute("PRAGMA user_version = 1")
        connection.commit()
        connection.close()
        with ResultStore(path) as store:
            assert store.get_run("k1") == make_run()
            indexes = {
                row[0]
                for row in store._connection().execute(
                    "SELECT name FROM sqlite_master WHERE type = 'index'"
                )
            }
            assert "idx_results_query" in indexes

    def test_malformed_run_payload(self):
        with ResultStore() as store:
            store.put("k1", "run", {"schema_version": PAYLOAD_VERSION, "run": {"nope": 1}})
            with pytest.raises(StoreError, match="malformed run payload"):
                store.get_run("k1")


class TestPurgeStaleKeys:
    def _payload(self, schema):
        payload = key_payload("s", "d", {}, "p", "n", "raw", 1, 1, None)
        payload["key_schema"] = schema
        return payload

    def test_old_schema_rows_deleted_current_kept(self):
        with ResultStore() as store:
            store.put_run("old", make_run(), key_payload=self._payload(KEY_SCHEMA - 1))
            store.put_run("cur", make_run(), key_payload=self._payload(KEY_SCHEMA))
            assert store.purge_stale_keys() == 1
            assert store.get_run("old") is None
            assert store.get_run("cur") == make_run()

    def test_rows_without_payload_are_kept(self):
        # The debug column is optional; rows written without it have an
        # undeterminable schema and must never be reclaimed.
        with ResultStore() as store:
            store.put_run("bare", make_run())
            store.put_run("old", make_run(), key_payload=self._payload(KEY_SCHEMA - 1))
            assert store.purge_stale_keys() == 1
            assert store.get_run("bare") == make_run()

    def test_purge_is_idempotent_and_counts(self):
        with ResultStore() as store:
            for index in range(3):
                store.put_run(
                    f"old{index}", make_run(), key_payload=self._payload(KEY_SCHEMA - 1)
                )
            store.put_outcome("o1", make_outcome(), key_payload=self._payload(KEY_SCHEMA))
            assert store.purge_stale_keys() == 3
            assert store.purge_stale_keys() == 0
            assert len(store) == 1

    def test_purged_store_persists(self, tmp_path):
        path = tmp_path / "purge.sqlite"
        with ResultStore(path) as store:
            store.put_run("old", make_run(), key_payload=self._payload(KEY_SCHEMA - 1))
            store.put_run("cur", make_run(), key_payload=self._payload(KEY_SCHEMA))
            store.purge_stale_keys()
        with ResultStore(path) as store:
            assert store.get_run("old") is None
            assert store.get_run("cur") == make_run()
