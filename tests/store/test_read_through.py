"""Read-through integration: the store answers repeat scenarios from disk.

The acceptance contract of the store subsystem: running the same figure-2
scenario twice against one store yields byte-identical scores with **zero**
backend executions on the second pass, observable through the engine's
store/execution counters.
"""

import pytest

from repro.execution import ExecutionEngine
from repro.devices import get_device
from repro.store import ResultStore
from repro.suite import figure2_scenario, mitigated_scenario
from repro.suite.runner import run_scenario

KNOBS = dict(shots=60, repetitions=1, seed=99, trajectories=12)
DEVICES = ["IBM-Casablanca-7Q", "IonQ-11Q"]


@pytest.fixture()
def store():
    with ResultStore() as store:
        yield store


def merged_stats(result):
    totals = {}
    for stats in result.engine_stats.values():
        for key, value in stats.items():
            totals[key] = totals.get(key, 0) + value
    return totals


class TestScenarioReadThrough:
    def test_second_pass_is_fully_cached(self, store):
        scenario = figure2_scenario(small=True, devices=DEVICES, families=["ghz", "bit_code"])
        first = run_scenario(scenario, store=store, **KNOBS)
        second = run_scenario(scenario, store=store, **KNOBS)

        assert second.scores() == first.scores()
        # Byte-identical outcome payloads, not merely equal score floats.
        first_payloads = [outcome.as_dict() for outcome in first.outcomes()]
        second_payloads = [outcome.as_dict() for outcome in second.outcomes()]
        assert second_payloads == first_payloads

        cold = merged_stats(first)
        warm = merged_stats(second)
        executed = len(first.runs())
        assert executed > 0
        assert cold["store_hits"] == 0
        assert cold["store_misses"] == executed
        assert cold["executions"] == executed
        # Second pass: every unit answered from the store, nothing simulated
        # and nothing compiled.
        assert warm["store_hits"] == executed
        assert warm["store_misses"] == 0
        assert warm["executions"] == 0
        assert warm["misses"] == 0  # transpile cache untouched

    def test_mitigated_scenario_keys_per_technique(self, store):
        scenario = mitigated_scenario(
            techniques=("raw", "readout"), small=True,
            devices=["IonQ-11Q"], families=["ghz"],
        )
        first = run_scenario(scenario, store=store, **KNOBS)
        second = run_scenario(scenario, store=store, **KNOBS)
        assert second.scores() == first.scores()
        assert merged_stats(second)["executions"] == 0
        # Raw and mitigated scores live under distinct content keys.
        raw = {key for key in first.scores() if key.endswith("|raw")}
        mitigated = {key for key in first.scores() if key.endswith("|readout")}
        assert raw and mitigated

    def test_changed_knob_misses(self, store):
        scenario = figure2_scenario(small=True, devices=["IonQ-11Q"], families=["ghz"])
        run_scenario(scenario, store=store, **KNOBS)
        changed = dict(KNOBS, seed=100)
        second = run_scenario(scenario, store=store, **changed)
        stats = merged_stats(second)
        assert stats["store_hits"] == 0
        assert stats["executions"] == len(second.runs())

    def test_outcome_rows_queryable(self, store):
        scenario = figure2_scenario(small=True, devices=["IonQ-11Q"], families=["ghz"])
        run_scenario(scenario, store=store, **KNOBS)
        rows = store.query(kind="outcome", scenario="figure2", family="ghz")
        assert len(rows) == 2
        assert {row["device"] for row in rows} == {"IonQ-11Q"}

    def test_store_off_by_default(self):
        scenario = figure2_scenario(small=True, devices=["IonQ-11Q"], families=["ghz"])
        result = run_scenario(scenario, **KNOBS)
        stats = merged_stats(result)
        assert stats["store_hits"] == 0
        assert stats["store_misses"] == 0


class TestEngineContentKey:
    def test_engine_level_read_through(self, store):
        from repro.benchmarks import GHZBenchmark

        device = get_device("IonQ-11Q")
        benchmark = GHZBenchmark(3)
        with ExecutionEngine(device, store=store, trajectories=12) as engine:
            first = engine.run_suite([benchmark], shots=60, repetitions=1, seed=99)
        with ExecutionEngine(device, store=store, trajectories=12) as engine:
            second = engine.run_suite([benchmark], shots=60, repetitions=1, seed=99)
            stats = engine.stats()
        assert second == first
        assert stats["store_hits"] == 1
        assert stats["executions"] == 0

    def test_content_key_is_stable_across_engines(self, store):
        from repro.benchmarks import GHZBenchmark

        device = get_device("IonQ-11Q")
        benchmark = GHZBenchmark(3)
        with ExecutionEngine(device, trajectories=12) as one:
            key_one = one.content_key(benchmark, 60, 1, 99)
        with ExecutionEngine(device, trajectories=12) as two:
            key_two = two.content_key(benchmark, 60, 1, 99)
        assert key_one == key_two
