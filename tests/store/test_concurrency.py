"""Concurrent-access tests: threads and processes sharing one store file.

The satellite contract: two threads and two processes writing disjoint and
overlapping key sets lose no rows, never surface sqlite's ``database is
locked``, and converge on one row per key under idempotent re-puts.
"""

import multiprocessing
import threading

from repro.store import ResultStore

from test_store import make_run  # noqa: E402 - sibling test module (pytest path mode)

WRITES_PER_WORKER = 40


def _thread_writer(store, keys, errors):
    try:
        for key in keys:
            store.put_run(key, make_run())
    except Exception as error:  # noqa: BLE001 - collected for the assertion
        errors.append(error)


def _process_writer(path, keys):
    """Runs in a child process: open the file independently and write."""
    with ResultStore(path) as store:
        for key in keys:
            store.put_run(key, make_run())
            assert store.get_run(key) is not None


def _spawn_processes(path, key_sets):
    context = multiprocessing.get_context("fork")
    processes = [
        context.Process(target=_process_writer, args=(str(path), keys))
        for keys in key_sets
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
    return processes


class TestThreadConcurrency:
    def test_disjoint_keys_no_lost_rows(self, tmp_path):
        with ResultStore(tmp_path / "threads.sqlite") as store:
            sets = [
                [f"t{worker}-{i}" for i in range(WRITES_PER_WORKER)]
                for worker in range(2)
            ]
            errors = []
            threads = [
                threading.Thread(target=_thread_writer, args=(store, keys, errors))
                for keys in sets
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            assert len(store) == 2 * WRITES_PER_WORKER
            for keys in sets:
                for key in keys:
                    assert store.get_run(key) is not None

    def test_overlapping_keys_idempotent(self, tmp_path):
        with ResultStore(tmp_path / "overlap.sqlite") as store:
            shared = [f"shared-{i}" for i in range(WRITES_PER_WORKER)]
            errors = []
            threads = [
                threading.Thread(target=_thread_writer, args=(store, shared, errors))
                for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            assert len(store) == WRITES_PER_WORKER
            for key in shared:
                assert store.get_run(key) == make_run()

    def test_memory_store_shared_across_threads(self):
        with ResultStore() as store:
            errors = []
            thread = threading.Thread(
                target=_thread_writer, args=(store, ["from-thread"], errors)
            )
            thread.start()
            thread.join(timeout=30)
            assert not errors
            assert store.get_run("from-thread") is not None


class TestProcessConcurrency:
    def test_disjoint_keys_across_processes(self, tmp_path):
        path = tmp_path / "procs.sqlite"
        ResultStore(path).close()  # create + migrate before forking
        sets = [
            [f"p{worker}-{i}" for i in range(WRITES_PER_WORKER)]
            for worker in range(2)
        ]
        processes = _spawn_processes(path, sets)
        assert all(process.exitcode == 0 for process in processes)
        with ResultStore(path) as store:
            assert len(store) == 2 * WRITES_PER_WORKER

    def test_overlapping_keys_across_processes(self, tmp_path):
        path = tmp_path / "procs-overlap.sqlite"
        ResultStore(path).close()
        shared = [f"shared-{i}" for i in range(WRITES_PER_WORKER)]
        processes = _spawn_processes(path, [shared, shared])
        assert all(process.exitcode == 0 for process in processes)
        with ResultStore(path) as store:
            assert len(store) == WRITES_PER_WORKER
            for key in shared:
                assert store.get_run(key) == make_run()
