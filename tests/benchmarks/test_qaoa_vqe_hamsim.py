"""Tests for the QAOA, VQE and Hamiltonian-simulation benchmarks."""

import numpy as np
import pytest

from repro.benchmarks import (
    HamiltonianSimulationBenchmark,
    VQEBenchmark,
    VanillaQAOABenchmark,
    ZZSwapQAOABenchmark,
)
from repro.exceptions import BenchmarkError
from repro.simulation import Counts, StatevectorSimulator, final_statevector
from repro.utils import equivalent_up_to_global_phase


class TestVanillaQAOA:
    def test_parameter_validation(self):
        with pytest.raises(BenchmarkError):
            VanillaQAOABenchmark(1)
        with pytest.raises(BenchmarkError):
            VanillaQAOABenchmark(20)

    def test_ansatz_structure(self):
        benchmark = VanillaQAOABenchmark(5)
        circuit = benchmark.ansatz(0.4, 0.2)
        ops = circuit.count_ops()
        assert ops["h"] == 5
        assert ops["rzz"] == 10  # complete graph on 5 vertices
        assert ops["rx"] == 5
        assert ops["measure"] == 5

    def test_optimal_parameters_beat_random_guess(self):
        benchmark = VanillaQAOABenchmark(4, seed=1)
        optimal_energy = benchmark.ideal_energy()
        random_energy = benchmark._ansatz_energy(0.05, 0.05)
        assert optimal_energy <= random_energy + 1e-9
        # Optimisation should find genuinely negative energy for the SK model.
        assert optimal_energy < 0

    def test_ideal_execution_scores_high(self):
        benchmark = VanillaQAOABenchmark(4, seed=0)
        counts = StatevectorSimulator(seed=0).run(benchmark.circuits()[0], shots=4000)
        assert benchmark.score([counts]) > 0.9

    def test_wrong_counts_length_rejected(self):
        with pytest.raises(BenchmarkError):
            VanillaQAOABenchmark(4).score([])

    def test_score_bounded_for_garbage_counts(self):
        benchmark = VanillaQAOABenchmark(4, seed=2)
        garbage = Counts({"0000": 10, "1111": 10})
        assert 0.0 <= benchmark.score([garbage]) <= 1.0


class TestZZSwapQAOA:
    def test_swap_network_covers_all_pairs(self):
        benchmark = ZZSwapQAOABenchmark(5, seed=0)
        circuit = benchmark.ansatz(0.3, 0.1, measure=False)
        assert circuit.count_ops()["zzswap"] == 10

    def test_swap_network_only_uses_neighbouring_positions(self):
        benchmark = ZZSwapQAOABenchmark(6, seed=0)
        circuit = benchmark.ansatz(0.3, 0.1, measure=False)
        for instruction in circuit:
            if instruction.name == "zzswap":
                a, b = instruction.qubits
                assert abs(a - b) == 1

    def test_equivalent_energy_to_vanilla_at_same_parameters(self):
        """The SWAP network implements the same p=1 QAOA state (up to relabelling)."""
        vanilla = VanillaQAOABenchmark(4, seed=5)
        zzswap = ZZSwapQAOABenchmark(4, seed=5)
        assert vanilla.model.weights == zzswap.model.weights
        gamma, beta = 0.37, 0.21
        assert vanilla._ansatz_energy(gamma, beta) == pytest.approx(
            zzswap._ansatz_energy(gamma, beta), abs=1e-9
        )

    def test_ideal_execution_scores_high(self):
        benchmark = ZZSwapQAOABenchmark(4, seed=0)
        counts = StatevectorSimulator(seed=1).run(benchmark.circuits()[0], shots=4000)
        assert benchmark.score([counts]) > 0.9

    def test_feature_vector_has_lower_communication_than_vanilla(self):
        vanilla = VanillaQAOABenchmark(6, seed=0).features()
        zzswap = ZZSwapQAOABenchmark(6, seed=0).features()
        # The SWAP network only touches neighbouring positions.
        assert zzswap.program_communication < vanilla.program_communication


class TestVQE:
    def test_parameter_validation(self):
        with pytest.raises(BenchmarkError):
            VQEBenchmark(1)
        with pytest.raises(BenchmarkError):
            VQEBenchmark(4, num_layers=0)

    def test_parameter_count(self):
        assert VQEBenchmark(4, 1).num_parameters == 16
        assert VQEBenchmark(4, 2).num_parameters == 24

    def test_wrong_parameter_length_rejected(self):
        benchmark = VQEBenchmark(4, 1)
        with pytest.raises(BenchmarkError):
            benchmark.ansatz([0.1, 0.2])

    def test_two_measurement_circuits(self):
        benchmark = VQEBenchmark(3, 1, seed=0)
        circuits = benchmark.circuits()
        assert len(circuits) == 2
        # The X-basis circuit has an extra layer of Hadamards.
        assert circuits[1].count_ops()["h"] == 3

    def test_optimised_energy_approaches_ground_state(self):
        benchmark = VQEBenchmark(3, 1, seed=0)
        ideal = benchmark.ideal_energy()
        exact = benchmark.exact_ground_energy()
        assert ideal >= exact - 1e-6
        assert ideal <= 0.7 * exact  # captures most of the correlation energy

    def test_ideal_execution_scores_high(self):
        benchmark = VQEBenchmark(3, 1, seed=0)
        simulator = StatevectorSimulator(seed=0)
        counts = [simulator.run(circuit, shots=4000) for circuit in benchmark.circuits()]
        assert benchmark.score(counts) > 0.9

    def test_wrong_counts_length_rejected(self):
        with pytest.raises(BenchmarkError):
            VQEBenchmark(3, 1).score([Counts({"000": 1})])


class TestHamiltonianSimulation:
    def test_parameter_validation(self):
        with pytest.raises(BenchmarkError):
            HamiltonianSimulationBenchmark(1)
        with pytest.raises(BenchmarkError):
            HamiltonianSimulationBenchmark(4, steps=0)

    def test_circuit_scales_with_steps(self):
        one = HamiltonianSimulationBenchmark(4, steps=1).circuits()[0]
        three = HamiltonianSimulationBenchmark(4, steps=3).circuits()[0]
        assert three.count_ops()["rzz"] == 3 * one.count_ops()["rzz"]

    def test_ideal_magnetisation_decays_with_time(self):
        short = HamiltonianSimulationBenchmark(4, steps=1).ideal_magnetisation()
        long = HamiltonianSimulationBenchmark(4, steps=3).ideal_magnetisation()
        assert short > long
        assert 0.0 < long < 1.0

    def test_measured_magnetisation_of_deterministic_counts(self):
        benchmark = HamiltonianSimulationBenchmark(4, steps=1)
        assert benchmark.measured_magnetisation(Counts({"0000": 10})) == pytest.approx(1.0)
        assert benchmark.measured_magnetisation(Counts({"1111": 10})) == pytest.approx(-1.0)

    def test_ideal_execution_scores_high(self):
        benchmark = HamiltonianSimulationBenchmark(4, steps=2)
        counts = StatevectorSimulator(seed=0).run(benchmark.circuits()[0], shots=4000)
        assert benchmark.score([counts]) > 0.95

    def test_score_bounded(self):
        benchmark = HamiltonianSimulationBenchmark(3, steps=1)
        assert 0.0 <= benchmark.score([Counts({"111": 5})]) <= 1.0
