"""Tests for the bit-code and phase-code proxy benchmarks."""

import pytest

from repro.benchmarks import BitCodeBenchmark, PhaseCodeBenchmark
from repro.exceptions import BenchmarkError
from repro.simulation import Counts, NoiseModel, StatevectorSimulator


class TestLayout:
    def test_parameter_validation(self):
        with pytest.raises(BenchmarkError):
            BitCodeBenchmark(1, 1)
        with pytest.raises(BenchmarkError):
            BitCodeBenchmark(3, 0)
        with pytest.raises(BenchmarkError):
            PhaseCodeBenchmark(3, 1, initial_state=[0, 1])
        with pytest.raises(BenchmarkError):
            PhaseCodeBenchmark(3, 1, initial_state=[0, 2, 1])

    def test_qubit_and_clbit_counts(self):
        benchmark = BitCodeBenchmark(5, 3)
        assert benchmark.total_qubits == 9
        assert benchmark.total_clbits == 5 + 3 * 4
        circuit = benchmark.circuits()[0]
        assert circuit.num_qubits == 9
        assert circuit.num_clbits == 17

    def test_default_initial_state_alternates(self):
        assert BitCodeBenchmark(4, 1).initial_state == (0, 1, 0, 1)

    def test_mid_circuit_reset_present(self):
        circuit = BitCodeBenchmark(3, 2).circuits()[0]
        assert circuit.num_resets() == 4
        assert circuit.num_measurements() == 3 + 4

    def test_measurement_feature_is_nonzero(self):
        assert BitCodeBenchmark(3, 2).features().measurement > 0
        assert PhaseCodeBenchmark(3, 2).features().measurement > 0


class TestBitCodeScoring:
    def test_ideal_distribution_is_deterministic(self):
        benchmark = BitCodeBenchmark(3, 2, initial_state=[0, 1, 0])
        distribution = benchmark.ideal_distribution()
        assert len(distribution) == 1
        key = next(iter(distribution))
        assert key[:3] == "010"
        # Syndromes: 0 xor 1 = 1, 1 xor 0 = 1, repeated for both rounds.
        assert key[3:] == "1111"

    def test_ideal_simulation_scores_one(self):
        benchmark = BitCodeBenchmark(3, 2)
        counts = StatevectorSimulator(seed=0).run(benchmark.circuits()[0], shots=300)
        assert benchmark.score([counts]) > 0.99

    def test_noise_reduces_score(self):
        benchmark = BitCodeBenchmark(3, 2)
        model = NoiseModel(
            benchmark.total_qubits,
            t1=30.0,
            t2=30.0,
            readout_time=5.0,
            error_2q=0.03,
            readout_error=0.03,
        )
        counts = StatevectorSimulator(model, seed=1, trajectories=60).run(
            benchmark.circuits()[0], shots=300
        )
        assert benchmark.score([counts]) < 0.9

    def test_wrong_counts_length_rejected(self):
        with pytest.raises(BenchmarkError):
            BitCodeBenchmark(3, 1).score([])


class TestPhaseCodeScoring:
    def test_ideal_distribution_uniform_over_data(self):
        benchmark = PhaseCodeBenchmark(3, 1, initial_state=[0, 1, 0])
        distribution = benchmark.ideal_distribution()
        assert len(distribution) == 8
        assert all(value == pytest.approx(1 / 8) for value in distribution.values())
        # Syndromes deterministic: signs differ on both bonds.
        assert all(key[3:] == "11" for key in distribution)

    def test_ideal_simulation_scores_one(self):
        benchmark = PhaseCodeBenchmark(3, 2)
        counts = StatevectorSimulator(seed=2).run(benchmark.circuits()[0], shots=600)
        assert benchmark.score([counts]) > 0.95

    def test_equal_sign_initial_state_gives_zero_syndrome(self):
        benchmark = PhaseCodeBenchmark(3, 1, initial_state=[0, 0, 0])
        counts = StatevectorSimulator(seed=3).run(benchmark.circuits()[0], shots=200)
        assert all(key[3:] == "00" for key in counts)

    def test_scales_to_five_data_qubits(self):
        benchmark = PhaseCodeBenchmark(5, 2)
        assert benchmark.circuits()[0].num_qubits == 9
