"""Regression tests: benchmark circuits are constructed exactly once.

The experiment drivers historically rebuilt identical circuits three times
per run — once for transpilation, once for scoring and once for feature
extraction.  ``Benchmark.circuits()`` / ``circuit()`` / ``features()`` now
cache on the instance, and the registry memoizes instances per spec, so one
spec means one construction per process.
"""

import pytest

from repro.benchmarks import GHZBenchmark, VanillaQAOABenchmark
from repro.devices import get_device
from repro.execution import ExecutionEngine
from repro.features import FeatureVector
from repro.suite import BenchmarkRegistry


class CountingGHZ(GHZBenchmark):
    def __init__(self, num_qubits):
        super().__init__(num_qubits)
        self.builds = 0

    def _build_circuits(self):
        self.builds += 1
        return super()._build_circuits()


class TestInstanceCaching:
    def test_circuits_built_once(self):
        benchmark = CountingGHZ(4)
        first = benchmark.circuits()
        second = benchmark.circuits()
        assert benchmark.builds == 1
        assert first == second
        # Callers get a fresh list (mutating it cannot corrupt the cache)...
        first.clear()
        assert len(benchmark.circuits()) == 1

    def test_circuit_and_features_share_the_construction(self):
        benchmark = CountingGHZ(4)
        benchmark.circuit()
        benchmark.features()
        benchmark.describe()
        assert benchmark.builds == 1

    def test_features_cached(self):
        benchmark = GHZBenchmark(4)
        assert benchmark.features() is benchmark.features()
        assert isinstance(benchmark.features(), FeatureVector)

    def test_invalidate_cache_rebuilds(self):
        benchmark = CountingGHZ(4)
        benchmark.circuits()
        benchmark.invalidate_cache()
        benchmark.circuits()
        assert benchmark.builds == 2

    def test_qaoa_representative_cached_without_optimisation(self):
        """The QAOA representative circuit must not trigger the classical
        parameter optimisation, and must be cached."""
        benchmark = VanillaQAOABenchmark(4)
        assert benchmark.circuit() is benchmark.circuit()
        assert benchmark._parameters is None  # optimisation not triggered


class TestExactlyOneConstructionPerRun:
    def test_engine_run_builds_circuits_exactly_once(self):
        """engine.run transpiles, scores and extracts features from one
        construction (the satellite's regression guard)."""
        benchmark = CountingGHZ(3)
        with ExecutionEngine(get_device("IonQ-11Q"), trajectories=8) as engine:
            run = engine.run(benchmark, shots=40, repetitions=2, seed=5)
        assert benchmark.builds == 1
        assert len(run.scores) == 2
        assert run.features["critical_depth"] == pytest.approx(1.0)

    def test_one_construction_per_spec_across_suite_runs(self):
        """Through the registry, repeated sweeps share one construction."""
        registry = BenchmarkRegistry()
        registry.register("counting_ghz")(CountingGHZ)
        spec = registry.spec("counting_ghz", num_qubits=3)
        with ExecutionEngine(get_device("IonQ-11Q"), trajectories=8) as engine:
            for _ in range(3):
                engine.run(registry.build(spec), shots=20, repetitions=1, seed=5)
        assert registry.build(spec).builds == 1
