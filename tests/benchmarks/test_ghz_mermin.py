"""Tests for the GHZ and Mermin-Bell benchmarks."""

import numpy as np
import pytest

from repro.benchmarks import GHZBenchmark, MerminBellBenchmark, classical_bound, mermin_operator, quantum_bound
from repro.exceptions import BenchmarkError
from repro.simulation import Counts, StatevectorSimulator, final_statevector


class TestGHZBenchmark:
    def test_minimum_size(self):
        with pytest.raises(BenchmarkError):
            GHZBenchmark(1)

    def test_circuit_structure(self):
        circuit = GHZBenchmark(5).circuits()[0]
        assert circuit.count_ops() == {"h": 1, "cx": 4, "measure": 5}

    def test_ideal_execution_scores_one(self, simulator):
        benchmark = GHZBenchmark(4)
        counts = simulator.run(benchmark.circuits()[0], shots=2000)
        assert benchmark.score([counts]) > 0.97

    def test_uniform_noise_scores_low(self):
        benchmark = GHZBenchmark(3)
        uniform = Counts({format(i, "03b"): 10 for i in range(8)})
        # Hellinger fidelity of the uniform distribution against the ideal
        # 50/50 GHZ distribution is (2 * sqrt(1/8 * 1/2))**2 = 0.25.
        assert benchmark.score([uniform]) == pytest.approx(0.25, abs=0.01)

    def test_completely_wrong_distribution_scores_zero(self):
        benchmark = GHZBenchmark(3)
        assert benchmark.score([Counts({"010": 100})]) == 0.0

    def test_wrong_number_of_counts_rejected(self):
        with pytest.raises(BenchmarkError):
            GHZBenchmark(3).score([])

    def test_features_match_ladder_structure(self):
        features = GHZBenchmark(5).features()
        assert features.critical_depth == pytest.approx(1.0)
        assert features.measurement == 0.0


class TestMerminOperator:
    def test_term_count(self):
        assert len(mermin_operator(3)) == 4
        assert len(mermin_operator(4)) == 8

    def test_all_terms_full_weight_with_odd_y(self):
        for term in mermin_operator(4):
            assert term.pauli.weight() == 4
            letters = [letter for _q, letter in term.pauli]
            assert letters.count("Y") % 2 == 1

    def test_bounds(self):
        assert quantum_bound(3) == 4.0
        assert classical_bound(3) == 2.0
        assert quantum_bound(4) == 8.0
        assert classical_bound(4) == 4.0

    def test_prepared_state_saturates_quantum_bound(self):
        for n in (3, 4):
            benchmark = MerminBellBenchmark(n)
            state = final_statevector(benchmark._state_preparation())
            expectation = mermin_operator(n).expectation_from_statevector(state)
            assert expectation == pytest.approx(quantum_bound(n), rel=1e-9)


class TestMerminBellBenchmark:
    def test_size_limits(self):
        with pytest.raises(BenchmarkError):
            MerminBellBenchmark(1)
        with pytest.raises(BenchmarkError):
            MerminBellBenchmark(8)

    def test_number_of_measurement_circuits(self):
        assert len(MerminBellBenchmark(3).circuits()) == 4
        assert len(MerminBellBenchmark(4).circuits()) == 8

    def test_ideal_execution_scores_near_one(self):
        benchmark = MerminBellBenchmark(3)
        simulator = StatevectorSimulator(seed=0)
        counts = [simulator.run(circuit, shots=2000) for circuit in benchmark.circuits()]
        assert benchmark.score(counts) > 0.95

    def test_ideal_execution_beats_classical_limit(self):
        benchmark = MerminBellBenchmark(3)
        simulator = StatevectorSimulator(seed=1)
        counts = [simulator.run(circuit, shots=2000) for circuit in benchmark.circuits()]
        assert benchmark.score(counts) > benchmark.classical_limit_score()

    def test_classical_limit_score_value(self):
        assert MerminBellBenchmark(3).classical_limit_score() == pytest.approx(0.75)

    def test_random_outcomes_score_half(self):
        benchmark = MerminBellBenchmark(3)
        uniform = Counts({format(i, "03b"): 25 for i in range(8)})
        score = benchmark.score([uniform] * len(benchmark.circuits()))
        assert score == pytest.approx(0.5, abs=0.1)

    def test_wrong_number_of_counts_rejected(self):
        with pytest.raises(BenchmarkError):
            MerminBellBenchmark(3).score([Counts({"000": 1})])
