"""Pass-level invariants.

Every transformation pass must preserve the circuit's unitary (up to global
phase) on random 3–5 qubit circuits, and routed output may only use coupled
qubit pairs.  These invariants hold for *any* pipeline a user assembles, not
just the presets.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.random_circuits import quantum_volume_circuit, random_clifford_circuit
from repro.devices import get_device
from repro.transpiler import (
    CancelAdjacentInverses,
    CommutingTwoQubitCancellation,
    DecomposeToCanonical,
    DepthAnalysis,
    DropNegligible,
    FuseSingleQubitRuns,
    MergeRotations,
    PropertySet,
    transpile,
)

TRANSFORMATION_PASSES = [
    DecomposeToCanonical,
    DropNegligible,
    MergeRotations,
    CancelAdjacentInverses,
    FuseSingleQubitRuns,
    CommutingTwoQubitCancellation,
]

#: Gate pool for random circuits: rotations (mergeable), self-inverses
#: (cancellable), diagonal/X-axis 1q gates (commutable) and 2q entanglers.
_POOL_1Q = ["h", "x", "z", "s", "sdg", "t", "tdg", "sx", "id"]
_POOL_1Q_ROT = ["rx", "ry", "rz", "p"]
_POOL_2Q = ["cx", "cz", "rzz"]


def _random_mixed_circuit(num_qubits: int, num_gates: int, seed: int) -> Circuit:
    """Random circuit rich enough to trigger every optimization pass."""
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits)
    for _ in range(num_gates):
        kind = rng.random()
        if kind < 0.4:
            name = _POOL_1Q[rng.integers(len(_POOL_1Q))]
            circuit.add_gate(name, [int(rng.integers(num_qubits))])
        elif kind < 0.7:
            name = _POOL_1Q_ROT[rng.integers(len(_POOL_1Q_ROT))]
            angle = float(rng.uniform(-math.pi, math.pi))
            # Occasionally emit a zero rotation so DropNegligible has work.
            if rng.random() < 0.1:
                angle = 0.0
            circuit.add_gate(name, [int(rng.integers(num_qubits))], [angle])
        else:
            name = _POOL_2Q[rng.integers(len(_POOL_2Q))]
            a, b = rng.choice(num_qubits, size=2, replace=False)
            params = [float(rng.uniform(-math.pi, math.pi))] if name == "rzz" else []
            circuit.add_gate(name, [int(a), int(b)], params)
    return circuit


@pytest.mark.parametrize("pass_cls", TRANSFORMATION_PASSES)
@pytest.mark.parametrize("num_qubits,seed", [(3, 0), (3, 1), (4, 2), (4, 3), (5, 4)])
def test_transformation_pass_preserves_unitary(
    pass_cls, num_qubits, seed, unitary_equivalent
):
    circuit = _random_mixed_circuit(num_qubits, 12 * num_qubits, seed)
    transformed = pass_cls().run(circuit, PropertySet())
    unitary_equivalent(circuit, transformed)


@pytest.mark.parametrize("pass_cls", TRANSFORMATION_PASSES)
@pytest.mark.parametrize("seed", [10, 11])
def test_transformation_pass_preserves_unitary_on_qv_circuits(
    pass_cls, seed, unitary_equivalent
):
    circuit = quantum_volume_circuit(4, rng=seed, measure=False)
    transformed = pass_cls().run(circuit, PropertySet())
    unitary_equivalent(circuit, transformed)


class TestCommutingTwoQubitCancellation:
    def run_pass(self, circuit: Circuit) -> Circuit:
        return CommutingTwoQubitCancellation().run(circuit, PropertySet())

    def test_cancels_through_commuting_gates(self, unitary_equivalent):
        circuit = Circuit(2).cx(0, 1).rz(0.3, 0).x(1).sx(1).t(0).cx(0, 1)
        out = self.run_pass(circuit)
        assert [i.name for i in out] == ["rz", "x", "sx", "t"]
        unitary_equivalent(circuit, out)

    def test_cz_cancels_symmetrically(self, unitary_equivalent):
        circuit = Circuit(2).cz(0, 1).rz(0.2, 0).s(1).cz(1, 0)
        out = self.run_pass(circuit)
        assert [i.name for i in out] == ["rz", "s"]
        unitary_equivalent(circuit, out)

    def test_blocked_by_non_commuting_gate(self):
        circuit = Circuit(2).cx(0, 1).h(1).cx(0, 1)
        assert len(self.run_pass(circuit)) == 3

    def test_blocked_by_barrier_and_measure(self):
        barrier = Circuit(2).cx(0, 1).barrier().cx(0, 1)
        assert sum(1 for i in self.run_pass(barrier) if i.name == "cx") == 2
        measured = Circuit(2, 2).cx(0, 1).measure(0, 0).cx(0, 1)
        assert sum(1 for i in self.run_pass(measured) if i.name == "cx") == 2

    def test_blocked_by_interleaved_two_qubit_gate(self):
        circuit = Circuit(3).cx(0, 1).cx(1, 2).cx(0, 1)
        assert len(self.run_pass(circuit)) == 3

    def test_iterates_to_fixed_point(self, unitary_equivalent):
        # Nested pair: the outer pair only cancels after the inner one does.
        circuit = (
            Circuit(2)
            .cx(0, 1)
            .rz(0.1, 0)
            .cx(0, 1)
            .cx(0, 1)
            .x(1)
            .cx(0, 1)
        )
        out = self.run_pass(circuit)
        assert [i.name for i in out] == ["rz", "x"]
        unitary_equivalent(circuit, out)

    def test_goes_beyond_adjacent_cancellation(self):
        """The case the old adjacent-only cancellation provably misses."""
        circuit = Circuit(2).cx(0, 1).rz(0.5, 0).cx(0, 1)
        adjacent_only = CancelAdjacentInverses().run(circuit, PropertySet())
        assert sum(1 for i in adjacent_only if i.name == "cx") == 2
        commuting = self.run_pass(circuit)
        assert sum(1 for i in commuting if i.name == "cx") == 0


class TestRoutingInvariant:
    @pytest.mark.parametrize("device_name", ["IBM-Casablanca-7Q", "IBM-Guadalupe-16Q"])
    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_routed_output_only_uses_coupled_pairs(self, device_name, level):
        device = get_device(device_name)
        for seed in (0, 1):
            circuit = random_clifford_circuit(5, 40, rng=seed)
            result = transpile(circuit, device, optimization_level=level)
            for instruction in result.circuit:
                if instruction.is_multi_qubit():
                    a, b = instruction.qubits
                    assert device.are_connected(a, b), (
                        f"{instruction.name} on uncoupled pair ({a}, {b})"
                    )


class TestDepthAnalysis:
    def test_metrics_match_direct_queries(self):
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2).rz(0.4, 2).cx(0, 1)
        properties = PropertySet()
        DepthAnalysis().run(circuit, properties)
        metrics = properties["metrics"]
        critical_two_qubit, critical_length = circuit.two_qubit_critical_path()
        assert metrics["gate_count"] == circuit.num_gates()
        assert metrics["two_qubit_gates"] == circuit.num_two_qubit_gates()
        assert metrics["depth"] == circuit.depth()
        assert metrics["critical_path_length"] == critical_length
        assert metrics["critical_two_qubit_gates"] == critical_two_qubit

    def test_preset_pipelines_feed_transpiled_metrics(self, ibm_device):
        result = transpile(Circuit(3).h(0).cx(0, 1).cx(1, 2), ibm_device)
        assert result.metrics["depth"] == result.circuit.depth()
        assert result.metrics["two_qubit_gates"] == result.circuit.num_two_qubit_gates()
        assert result.metrics["critical_two_qubit_gates"] >= 2
        assert result.depth() == result.metrics["depth"]
