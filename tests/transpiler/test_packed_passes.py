"""Packed fast-path guards: the vectorized passes must be invisible.

Four concerns:

* **Builder byte-parity** — :class:`~repro.circuits.columnar.PackedBuilder`
  outputs (round-trip, filtered, appended) are byte-identical to packing the
  equivalent instruction sequence from scratch, so circuit fingerprints
  hashed over the buffers can never tell the two construction paths apart.
* **Randomized pass parity** — hypothesis-driven instruction streams flow
  through every optimization pass (and the full five-pass chain) in both
  packed and object form and must produce identical gate sequences.
* **Preset/family parity** — every preset level compiles the Fig. 2
  benchmark families to the same circuit on both paths, under the same
  pipeline fingerprint (``use_packed`` is an execution detail, not a
  compilation knob — flipping it must not invalidate caches).
* **Wide rows and reporting** — >3-operand barriers stay on the packed path
  (the wide-pool escape hatch, not a silent object fallback), and
  :meth:`PassManager.report` / the ``transpiler.pass`` spans agree on which
  path ran and how many pack conversions were paid.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.benchmarks import figure2_benchmarks
from repro.circuits import Circuit, PackedCircuit
from repro.circuits.columnar import PackedBuilder
from repro.devices import get_device
from repro.telemetry import configure_tracing, get_tracer
from repro.transpiler import (
    CancelAdjacentInverses,
    CommutingTwoQubitCancellation,
    DropNegligible,
    FuseSingleQubitRuns,
    MergeRotations,
    PassManager,
    preset_pipeline,
    transpile,
)

DEVICE = "IBM-Guadalupe-16Q"


def _optimization_passes():
    return [
        DropNegligible(),
        MergeRotations(),
        CancelAdjacentInverses(),
        CommutingTwoQubitCancellation(),
        FuseSingleQubitRuns(),
    ]


def _stream(circuit: Circuit):
    return [
        (i.gate.name, i.gate.params, i.qubits, i.clbits) for i in circuit.instructions
    ]


def _random_circuit(num_qubits: int, seed: int) -> Circuit:
    """Optimization-relevant stream: rotations, inverses, cx/cz, barriers."""
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, num_qubits, name=f"rand{seed}")
    one_q = ["h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx", "sxdg", "i"]
    rotations = ["rx", "ry", "rz", "p"]
    for _ in range(int(rng.integers(5, 90))):
        roll = rng.random()
        if roll < 0.30:
            getattr(circuit, one_q[int(rng.integers(len(one_q)))])(
                int(rng.integers(num_qubits))
            )
        elif roll < 0.55:
            angle = [0.0, 1e-14, 0.3, -0.7, float(rng.uniform(-6, 6))][
                int(rng.integers(5))
            ]
            getattr(circuit, rotations[int(rng.integers(len(rotations)))])(
                angle, int(rng.integers(num_qubits))
            )
        elif roll < 0.78:
            a, b = (int(q) for q in rng.choice(num_qubits, size=2, replace=False))
            (circuit.cx if rng.random() < 0.5 else circuit.cz)(a, b)
        elif roll < 0.84:
            circuit.u(
                float(rng.uniform(-3, 3)),
                float(rng.uniform(-3, 3)),
                float(rng.uniform(-3, 3)),
                int(rng.integers(num_qubits)),
            )
        elif roll < 0.90:
            q = int(rng.integers(num_qubits))
            circuit.measure(q, q)
        elif roll < 0.93:
            circuit.reset(int(rng.integers(num_qubits)))
        else:
            count = int(rng.integers(0, num_qubits + 1))
            operands = rng.choice(num_qubits, size=count, replace=False)
            circuit.barrier(*(int(q) for q in operands))
    return circuit


def _assert_buffers_identical(a: PackedCircuit, b: PackedCircuit) -> None:
    for (label_a, buffer_a), (label_b, buffer_b) in zip(a.buffers(), b.buffers()):
        assert label_a == label_b
        assert buffer_a.dtype == buffer_b.dtype
        assert buffer_a.tobytes() == buffer_b.tobytes(), f"{label_a} buffers differ"


class TestPackedBuilder:
    def test_round_trip_is_byte_identical(self):
        packed = _random_circuit(5, 123).packed()
        _assert_buffers_identical(packed, PackedBuilder.from_packed(packed).build())

    def test_append_matches_fresh_pack(self):
        circuit = _random_circuit(6, 77)
        packed = circuit.packed()
        builder = PackedBuilder(packed.num_qubits, packed.num_clbits, packed.name)
        for _row, opcode, qubits, params, clbit in packed.iter_rows():
            builder.append(opcode, qubits, params, clbit)
        _assert_buffers_identical(packed, builder.build())

    def test_keep_compacts_pools_like_a_fresh_pack(self):
        circuit = Circuit(6, 6, name="widekeep")
        circuit.rx(0.5, 0).barrier(0, 1, 2, 3, 4).rz(0.25, 1)
        circuit.barrier(1, 2, 3, 4, 5).u(0.1, 0.2, 0.3, 2).measure(0, 0)
        packed = circuit.packed()
        mask = np.array([True, False, True, True, False, True])
        filtered = PackedBuilder.from_packed(packed).keep(mask).build()
        survivors = [
            instr for keep, instr in zip(mask, circuit.instructions) if keep
        ]
        reference = Circuit(6, 6, name="widekeep")
        for instruction in survivors:
            reference.append(instruction)
        _assert_buffers_identical(reference.packed(), filtered)

    def test_keep_rejects_appended_rows_and_bad_shapes(self):
        packed = _random_circuit(4, 9).packed()
        builder = PackedBuilder.from_packed(packed)
        with pytest.raises(ValueError):
            builder.keep(np.ones(len(packed) + 1, dtype=bool))
        builder.append(0, (0,))
        with pytest.raises(ValueError):
            builder.keep(np.ones(len(packed), dtype=bool))


class TestRandomizedParity:
    @given(num_qubits=st.integers(2, 6), seed=st.integers(0, 5000))
    @settings(max_examples=60, deadline=None)
    def test_each_pass_matches_object_walk(self, num_qubits, seed):
        circuit = _random_circuit(num_qubits, seed)
        for pass_ in _optimization_passes():
            object_manager = PassManager([pass_], use_packed=False)
            packed_manager = PassManager([pass_], use_packed=True)
            assert _stream(object_manager.run(circuit)) == _stream(
                packed_manager.run(circuit)
            ), pass_.name

    @given(num_qubits=st.integers(2, 6), seed=st.integers(0, 5000))
    @settings(max_examples=60, deadline=None)
    def test_full_chain_matches_object_walk(self, num_qubits, seed):
        circuit = _random_circuit(num_qubits, seed)
        object_manager = PassManager(_optimization_passes(), use_packed=False)
        packed_manager = PassManager(_optimization_passes(), use_packed=True)
        assert object_manager.fingerprint == packed_manager.fingerprint
        assert _stream(object_manager.run(circuit)) == _stream(
            packed_manager.run(circuit)
        )
        assert all(record.path == "packed" for record in packed_manager.last_records)
        assert all(record.path == "object" for record in object_manager.last_records)


class TestPresetFamilyParity:
    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_every_family_compiles_identically_at_level(self, level):
        device = get_device(DEVICE)
        families = figure2_benchmarks(small=True)
        assert len(families) == 8
        compared = 0
        for instances in families.values():
            benchmark = instances[0]
            circuit = benchmark.circuits()[0]
            if circuit.num_qubits > device.num_qubits:
                continue
            packed_pipeline = preset_pipeline(device, optimization_level=level)
            object_pipeline = preset_pipeline(device, optimization_level=level)
            object_pipeline.use_packed = False
            # use_packed is an execution detail: same fingerprint, same caches.
            assert packed_pipeline.fingerprint == object_pipeline.fingerprint
            fast = transpile(circuit, device, pass_manager=packed_pipeline)
            slow = transpile(circuit, device, pass_manager=object_pipeline)
            assert _stream(fast.circuit) == _stream(slow.circuit)
            assert fast.pipeline_fingerprint == slow.pipeline_fingerprint
            compared += 1
        assert compared >= 6  # every family that fits the 16q device


class TestWideRows:
    def test_wide_barrier_stays_on_packed_path(self):
        circuit = Circuit(6, name="wide")
        circuit.rz(0.4, 0).rz(0.3, 0)  # merges
        circuit.cx(0, 1).cx(0, 1)  # cancels
        circuit.barrier(0, 1, 2, 3, 4)  # wide row (5 operands > 3 slots)
        circuit.s(2).sdg(2)  # cancels after the barrier
        circuit.h(3).t(3).h(3)  # fuses
        circuit.rz(1e-15, 5)  # drops
        object_manager = PassManager(_optimization_passes(), use_packed=False)
        packed_manager = PassManager(_optimization_passes(), use_packed=True)
        expected = object_manager.run(circuit)
        observed = packed_manager.run(circuit)
        assert _stream(expected) == _stream(observed)
        assert [record.path for record in packed_manager.last_records] == [
            "packed"
        ] * 5

    def test_wide_barrier_blocks_merges_across_it(self):
        circuit = Circuit(5, name="wideblock")
        circuit.rz(0.4, 0)
        circuit.barrier(0, 1, 2, 3, 4)
        circuit.rz(0.3, 0)
        merged = PassManager([MergeRotations()]).run(circuit)
        assert _stream(merged) == _stream(circuit)


class TestReporting:
    def test_report_shows_path_and_conversion_counts(self):
        circuit = _random_circuit(5, 42)
        manager = PassManager(_optimization_passes(), use_packed=True)
        manager.run(circuit)
        report = manager.report()
        assert "packed" in report
        assert "pack conversions" in report
        assert f"{manager.last_conversions} pack conversions" in report

    def test_records_and_trace_spans_agree_on_path(self):
        tracer = configure_tracing(enabled=True)
        tracer.drain()
        circuit = _random_circuit(5, 43)
        manager = PassManager(_optimization_passes(), use_packed=True)
        try:
            manager.run(circuit)
            spans = [s for s in tracer.drain() if s.name == "transpiler.pass"]
        finally:
            configure_tracing(enabled=False)
        assert len(spans) == len(manager.last_records)
        by_name = {span.attributes["pass_name"]: span for span in spans}
        for record in manager.last_records:
            assert by_name[record.name].attributes["path"] == record.path == "packed"

    def test_object_only_pipeline_reports_no_conversions(self):
        circuit = _random_circuit(4, 44)
        manager = PassManager(_optimization_passes(), use_packed=False)
        manager.run(circuit)
        assert manager.last_conversions == 0
        assert all(record.conversions == 0 for record in manager.last_records)
        assert "0 pack conversions" in manager.report()
