"""Tests for the Closed-Division optimization passes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, random_clifford_circuit
from repro.simulation import circuit_unitary
from repro.transpiler import (
    cancel_adjacent_inverses,
    drop_negligible,
    fuse_single_qubit_runs,
    merge_rotations,
    optimize_circuit,
)
from repro.utils import equivalent_up_to_global_phase


class TestCancellation:
    def test_adjacent_cx_pair_removed(self):
        circuit = Circuit(2).cx(0, 1).cx(0, 1)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_h_pair_removed(self):
        circuit = Circuit(1).h(0).h(0).x(0)
        optimized = cancel_adjacent_inverses(circuit)
        assert [instruction.name for instruction in optimized] == ["x"]

    def test_s_sdg_pair_removed(self):
        circuit = Circuit(1).s(0).sdg(0)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_opposite_rotations_removed(self):
        circuit = Circuit(1).rz(0.4, 0).rz(-0.4, 0)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_intervening_gate_blocks_cancellation(self):
        circuit = Circuit(2).cx(0, 1).x(1).cx(0, 1)
        assert len(cancel_adjacent_inverses(circuit)) == 3

    def test_barrier_blocks_cancellation(self):
        circuit = Circuit(1).h(0).barrier().h(0)
        optimized = cancel_adjacent_inverses(circuit)
        assert optimized.count_ops().get("h", 0) == 2

    def test_cascaded_cancellation(self):
        # Removing the inner pair exposes the outer pair.
        circuit = Circuit(2).cx(0, 1).h(1).h(1).cx(0, 1)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_different_qubits_not_cancelled(self):
        circuit = Circuit(3).cx(0, 1).cx(1, 2)
        assert len(cancel_adjacent_inverses(circuit)) == 2


class TestRotationMerging:
    def test_adjacent_rz_merged(self):
        circuit = Circuit(1).rz(0.25, 0).rz(0.5, 0)
        merged = merge_rotations(circuit)
        assert len(merged) == 1
        assert merged[0].params[0] == pytest.approx(0.75)

    def test_merge_to_zero_removes_gate(self):
        circuit = Circuit(1).rz(0.3, 0).rz(-0.3, 0)
        assert len(merge_rotations(circuit)) == 0

    def test_two_qubit_rotation_merged(self):
        circuit = Circuit(2).rzz(0.2, 0, 1).rzz(0.3, 0, 1)
        merged = merge_rotations(circuit)
        assert len(merged) == 1
        assert merged[0].params[0] == pytest.approx(0.5)

    def test_different_axes_not_merged(self):
        circuit = Circuit(1).rz(0.2, 0).rx(0.3, 0)
        assert len(merge_rotations(circuit)) == 2


class TestFusion:
    def test_single_qubit_run_becomes_one_u(self):
        circuit = Circuit(1).h(0).t(0).s(0).rx(0.2, 0)
        fused = fuse_single_qubit_runs(circuit)
        assert fused.count_ops() == {"u": 1}
        assert equivalent_up_to_global_phase(circuit_unitary(circuit), circuit_unitary(fused))

    def test_identity_run_is_dropped(self):
        circuit = Circuit(1).h(0).h(0)
        assert len(fuse_single_qubit_runs(circuit)) == 0

    def test_two_qubit_gate_breaks_runs(self):
        circuit = Circuit(2).h(0).cx(0, 1).h(0)
        fused = fuse_single_qubit_runs(circuit)
        assert fused.count_ops()["u"] == 2
        assert equivalent_up_to_global_phase(circuit_unitary(circuit), circuit_unitary(fused))


class TestDropNegligible:
    def test_identity_and_zero_rotations_removed(self):
        circuit = Circuit(1).i(0).rz(0.0, 0).rz(2 * np.pi, 0).x(0)
        cleaned = drop_negligible(circuit)
        assert [instruction.name for instruction in cleaned] == ["x"]

    def test_zero_u_removed(self):
        circuit = Circuit(1).u(0.0, 0.0, 0.0, 0)
        assert len(drop_negligible(circuit)) == 0


class TestPipeline:
    def test_level_zero_is_identity(self):
        circuit = Circuit(1).h(0).h(0)
        assert len(optimize_circuit(circuit, level=0)) == 2

    @pytest.mark.parametrize("level", [1, 2])
    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_optimization_preserves_unitary(self, level, seed):
        circuit = random_clifford_circuit(3, 25, rng=seed)
        optimized = optimize_circuit(circuit, level=level)
        assert len(optimized) <= len(circuit)
        assert equivalent_up_to_global_phase(
            circuit_unitary(circuit), circuit_unitary(optimized), atol=1e-7
        )

    def test_measurements_survive_optimization(self):
        circuit = Circuit(2, 2).h(0).h(0).cx(0, 1).measure_all()
        optimized = optimize_circuit(circuit, level=2)
        assert optimized.num_measurements() == 2
