"""Tests for placement, routing and the full transpilation pipeline."""

import numpy as np
import pytest

from repro.circuits import Circuit, ghz_ladder
from repro.devices import get_device
from repro.exceptions import TranspilerError
from repro.simulation import StatevectorSimulator, circuit_unitary, final_statevector
from repro.transpiler import (
    SUPPORTED_BASES,
    noise_aware_placement,
    route_circuit,
    transpile,
    trivial_placement,
)
from repro.utils import equivalent_up_to_global_phase


class TestPlacement:
    def test_trivial_placement(self, ibm_device):
        circuit = ghz_ladder(3)
        assert trivial_placement(circuit, ibm_device) == {0: 0, 1: 1, 2: 2}

    def test_circuit_too_large_rejected(self, aqt_device):
        with pytest.raises(TranspilerError):
            trivial_placement(ghz_ladder(5), aqt_device)

    def test_noise_aware_placement_is_injective(self, ibm_device):
        circuit = ghz_ladder(5)
        placement = noise_aware_placement(circuit, ibm_device)
        assert len(placement) == 5
        assert len(set(placement.values())) == 5

    def test_noise_aware_placement_selects_connected_region(self, ibm_device):
        circuit = ghz_ladder(4)
        placement = noise_aware_placement(circuit, ibm_device)
        region = set(placement.values())
        subgraph = ibm_device.topology().subgraph(region)
        import networkx as nx

        assert nx.is_connected(subgraph)

    def test_all_to_all_placement(self, ionq_device):
        placement = noise_aware_placement(ghz_ladder(4), ionq_device)
        assert sorted(placement.values()) == [0, 1, 2, 3]


class TestRouting:
    def test_no_swaps_needed_on_all_to_all(self, ionq_device):
        circuit = Circuit(3).cx(0, 2).cx(1, 2)
        routed = route_circuit(circuit, ionq_device, {0: 0, 1: 1, 2: 2})
        assert routed.swap_count == 0

    def test_swaps_inserted_for_distant_qubits(self):
        device = get_device("IBM-Santiago-5Q")  # a line
        circuit = Circuit(5).cx(0, 4)
        routed = route_circuit(circuit, device, {q: q for q in range(5)})
        assert routed.swap_count >= 3
        topology = device.topology()
        for instruction in routed.circuit:
            if instruction.is_two_qubit():
                assert topology.has_edge(*instruction.qubits)

    def test_final_layout_tracks_swaps(self):
        device = get_device("IBM-Santiago-5Q")
        circuit = Circuit(3).cx(0, 2)
        routed = route_circuit(circuit, device, {0: 0, 1: 1, 2: 2})
        assert routed.swap_count == 1
        assert set(routed.final_layout.values()) == {routed.final_layout[q] for q in range(3)}

    def test_missing_placement_rejected(self, ibm_device):
        with pytest.raises(TranspilerError):
            route_circuit(Circuit(2).cx(0, 1), ibm_device, {0: 0})

    def test_multi_qubit_gate_rejected(self, ibm_device):
        with pytest.raises(TranspilerError):
            route_circuit(Circuit(3).ccx(0, 1, 2), ibm_device, {0: 0, 1: 1, 2: 2})


class TestTranspilePipeline:
    @pytest.mark.parametrize(
        "device_name", ["IBM-Casablanca-7Q", "IonQ-11Q", "AQT-4Q", "IBM-Santiago-5Q"]
    )
    def test_only_native_gates_and_coupled_pairs(self, device_name):
        device = get_device(device_name)
        circuit = Circuit(4, 4).h(0).cx(0, 1).rzz(0.4, 1, 2).cx(2, 3).measure_all()
        if circuit.num_qubits > device.num_qubits:
            circuit = Circuit(3, 3).h(0).cx(0, 1).rzz(0.4, 1, 2).measure_all()
        result = transpile(circuit, device)
        allowed = set(device.basis_gates) | {"measure", "reset", "barrier"}
        assert set(result.circuit.count_ops()) <= allowed
        topology = device.topology()
        for instruction in result.circuit:
            if instruction.is_two_qubit():
                assert topology.has_edge(*instruction.qubits)

    def test_too_large_circuit_rejected(self, aqt_device):
        with pytest.raises(TranspilerError):
            transpile(ghz_ladder(6), aqt_device)

    def test_measurements_preserved(self, ibm_device):
        circuit = ghz_ladder(3, measure=True)
        result = transpile(circuit, ibm_device)
        assert result.circuit.num_measurements() == 3

    def test_unitary_preserved_on_all_to_all_device(self, ionq_device):
        """Without routing permutations the compiled unitary must match exactly."""
        circuit = Circuit(3).h(0).cx(0, 1).rzz(0.3, 1, 2).t(2)
        result = transpile(circuit, ionq_device, placement="trivial")
        compact, physical = result.compact()
        remap = {p: i for i, p in enumerate(physical)}
        assert remap == {0: 0, 1: 1, 2: 2}
        assert equivalent_up_to_global_phase(
            circuit_unitary(circuit), circuit_unitary(compact), atol=1e-7
        )

    def test_compiled_ghz_still_produces_ghz_counts(self, ibm_device):
        circuit = ghz_ladder(4, measure=True)
        result = transpile(circuit, ibm_device)
        compact, _physical = result.compact()
        counts = StatevectorSimulator(seed=0).run(compact, shots=400)
        assert set(counts) == {"0000", "1111"}

    def test_compact_reindexes_to_zero_based(self, ibm_device):
        result = transpile(ghz_ladder(3, measure=True), ibm_device)
        compact, physical = result.compact()
        assert compact.num_qubits == len(physical)
        assert compact.active_qubits() == tuple(range(len(physical)))

    def test_swap_overhead_larger_on_sparse_topology(self):
        """All-to-all workloads pay a SWAP penalty on sparse devices (paper Sec. VI)."""
        from repro.benchmarks import VanillaQAOABenchmark

        circuit = VanillaQAOABenchmark(5).circuit()
        sparse = transpile(circuit, get_device("IBM-Casablanca-7Q"))
        dense = transpile(circuit, get_device("IonQ-11Q"))
        assert dense.swap_count == 0
        assert sparse.swap_count > 0
        assert sparse.two_qubit_gate_count() > dense.two_qubit_gate_count()

    def test_optimization_levels_do_not_change_semantics(self, ionq_device):
        circuit = Circuit(3).h(0).h(0).cx(0, 1).rz(0.2, 1).rz(-0.2, 1).cx(1, 2)
        level0 = transpile(circuit, ionq_device, optimization_level=0, placement="trivial")
        level2 = transpile(circuit, ionq_device, optimization_level=2, placement="trivial")
        compact0, _ = level0.compact()
        compact2, _ = level2.compact()
        state0 = final_statevector(compact0)
        state2 = final_statevector(compact2)
        assert equivalent_up_to_global_phase(state0, state2, atol=1e-7)

    def test_unknown_placement_rejected(self, ibm_device):
        with pytest.raises(TranspilerError):
            transpile(ghz_ladder(3), ibm_device, placement="magic")
