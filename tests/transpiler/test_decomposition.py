"""Tests for gate decomposition and native basis translation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, GATE_DEFINITIONS, gate_matrix, random_clifford_circuit
from repro.exceptions import TranspilerError
from repro.simulation import circuit_unitary
from repro.transpiler import (
    SUPPORTED_BASES,
    basis_for_gates,
    decompose_to_canonical,
    translate_to_basis,
    zyz_angles,
)
from repro.utils import equivalent_up_to_global_phase


def _random_unitary(rng):
    matrix = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
    q, _ = np.linalg.qr(matrix)
    return q


class TestZYZ:
    def test_identity(self):
        theta, phi, lam = zyz_angles(np.eye(2))
        assert abs(theta) < 1e-9

    def test_hadamard(self):
        theta, phi, lam = zyz_angles(gate_matrix("h"))
        reconstructed = gate_matrix("rz", phi) @ gate_matrix("ry", theta) @ gate_matrix("rz", lam)
        assert equivalent_up_to_global_phase(reconstructed, gate_matrix("h"))

    def test_wrong_shape_rejected(self):
        with pytest.raises(TranspilerError):
            zyz_angles(np.eye(4))

    @given(seed=st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_random_unitaries_round_trip(self, seed):
        unitary = _random_unitary(np.random.default_rng(seed))
        theta, phi, lam = zyz_angles(unitary)
        reconstructed = gate_matrix("rz", phi) @ gate_matrix("ry", theta) @ gate_matrix("rz", lam)
        assert equivalent_up_to_global_phase(reconstructed, unitary, atol=1e-7)


class TestCanonicalDecomposition:
    DECOMPOSABLE = [
        name
        for name, definition in GATE_DEFINITIONS.items()
        if definition.is_unitary and name not in ("iswap",)
    ]

    @pytest.mark.parametrize("name", DECOMPOSABLE)
    def test_every_gate_decomposes_equivalently(self, name):
        definition = GATE_DEFINITIONS[name]
        params = [0.37 * (i + 1) for i in range(definition.num_params)]
        circuit = Circuit(definition.num_qubits)
        circuit.add_gate(name, list(range(definition.num_qubits)), params)
        canonical = decompose_to_canonical(circuit)
        assert set(op for op in canonical.count_ops()) <= {"u", "cx"}
        assert equivalent_up_to_global_phase(
            circuit_unitary(circuit), circuit_unitary(canonical), atol=1e-8
        )

    def test_measure_and_reset_pass_through(self):
        circuit = Circuit(1, 1).h(0).measure(0, 0)
        canonical = decompose_to_canonical(circuit)
        assert canonical.num_measurements() == 1

    def test_unknown_gate_rejected(self):
        circuit = Circuit(2).iswap(0, 1)
        with pytest.raises(TranspilerError):
            decompose_to_canonical(circuit)


class TestBasisTranslation:
    def test_basis_for_gates(self):
        assert basis_for_gates(("rz", "sx", "x", "cx")) == "ibm"
        assert basis_for_gates(("rx", "ry", "rz", "rxx")) == "ionq"
        assert basis_for_gates(("rz", "sx", "x", "cz")) == "aqt"
        with pytest.raises(TranspilerError):
            basis_for_gates(("h",))

    def test_unknown_basis_rejected(self):
        with pytest.raises(TranspilerError):
            translate_to_basis(Circuit(1).h(0), "rigetti")

    @pytest.mark.parametrize("basis", ["ibm", "ionq", "aqt"])
    def test_only_native_gates_emitted(self, basis):
        circuit = Circuit(3).h(0).cx(0, 1).rzz(0.3, 1, 2).t(2).swap(0, 2)
        translated = translate_to_basis(circuit, basis)
        allowed = set(SUPPORTED_BASES[basis]) | {"measure", "reset", "barrier"}
        assert set(translated.count_ops()) <= allowed

    @pytest.mark.parametrize("basis", ["ibm", "ionq", "aqt", "canonical"])
    def test_translation_preserves_unitary(self, basis):
        circuit = Circuit(3).h(0).cx(0, 1).rzz(0.7, 1, 2).ry(0.3, 2).swap(0, 2).sdg(1)
        translated = translate_to_basis(circuit, basis)
        assert equivalent_up_to_global_phase(
            circuit_unitary(circuit), circuit_unitary(translated), atol=1e-7
        )

    @pytest.mark.parametrize("basis", ["ibm", "ionq", "aqt"])
    @pytest.mark.parametrize(
        "angles",
        [(0.0, 0.0, 0.0), (math.pi / 2, 0.3, -1.1), (math.pi, 0.0, 0.0), (2.2, -0.4, 0.9)],
    )
    def test_u_gate_special_cases(self, basis, angles):
        circuit = Circuit(1).u(*angles, 0)
        translated = translate_to_basis(circuit, basis)
        assert equivalent_up_to_global_phase(
            circuit_unitary(circuit), circuit_unitary(translated), atol=1e-8
        )

    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_random_circuits_preserved_in_ibm_basis(self, seed):
        circuit = random_clifford_circuit(3, 15, rng=seed)
        translated = translate_to_basis(circuit, "ibm")
        assert equivalent_up_to_global_phase(
            circuit_unitary(circuit), circuit_unitary(translated), atol=1e-7
        )
