"""Zero-noise extrapolation: folding transforms and extrapolators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import hellinger_fidelity
from repro.circuits import Circuit
from repro.exceptions import MitigationError
from repro.mitigation import (
    ExponentialExtrapolator,
    LinearExtrapolator,
    RichardsonExtrapolator,
    ZNEMitigator,
    fold_global,
    fold_two_qubit_gates,
    resolve_extrapolator,
)
from repro.simulation import Counts, NoiseModel, StatevectorSimulator


def ghz_circuit(n, measure=True):
    circuit = Circuit(n, name=f"ghz_{n}")
    circuit.h(0)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    if measure:
        circuit.measure_all()
    return circuit


class TestGlobalFolding:
    def test_odd_integer_scales_are_exact(self):
        circuit = ghz_circuit(3)
        for scale in (1, 3, 5):
            folded, achieved = fold_global(circuit, scale)
            assert achieved == pytest.approx(scale)
            assert folded.num_gates(include_measurements=False) == 3 * scale
            assert folded.num_measurements() == 3

    def test_partial_fold_hits_nearest_achievable_scale(self):
        circuit = ghz_circuit(3)
        folded, achieved = fold_global(circuit, 2.0)
        # 3 body gates: achievable scales near 2 are 1+2r/3 for r in 0..3.
        assert achieved in (1 + 2 / 3, 1 + 4 / 3)
        assert folded.num_gates(include_measurements=False) == round(3 * achieved)

    def test_folding_preserves_the_unitary(self, unitary_equivalent):
        circuit = ghz_circuit(3, measure=False)
        for scale in (3.0, 2.4, 5.0):
            folded, _ = fold_global(circuit, scale)
            unitary_equivalent(folded, circuit)

    def test_interleaved_terminal_measurements_hoisted(self):
        """Terminal measurements before trailing gates on other qubits fold fine."""
        circuit = Circuit(2).h(0).measure(0, 0).x(1).measure(1, 1)
        folded, achieved = fold_global(circuit, 3)
        assert achieved == pytest.approx(3.0)
        assert folded.num_gates(include_measurements=False) == 6
        assert folded.num_measurements() == 2

    def test_mid_circuit_measurement_rejected(self):
        circuit = Circuit(2).h(0).measure(0, 0).x(0).measure(0, 1)
        with pytest.raises(MitigationError):
            fold_global(circuit, 3)
        with pytest.raises(MitigationError):
            fold_global(Circuit(1).h(0).reset(0).measure(0, 0), 3)

    def test_scale_below_one_rejected(self):
        with pytest.raises(MitigationError):
            fold_global(ghz_circuit(2), 0.5)


class TestLocalFolding:
    def test_only_two_qubit_gates_fold(self):
        circuit = ghz_circuit(4)
        folded, achieved = fold_two_qubit_gates(circuit, 3)
        assert achieved == pytest.approx(3.0)
        assert folded.num_two_qubit_gates() == 9
        assert folded.count_ops()["h"] == 1  # single-qubit gates untouched

    def test_folding_preserves_the_unitary(self, unitary_equivalent):
        circuit = Circuit(3).h(0).cx(0, 1).rzz(0.4, 1, 2).cx(0, 2)
        folded, _ = fold_two_qubit_gates(circuit, 3)
        unitary_equivalent(folded, circuit)

    def test_partial_local_fold(self):
        circuit = ghz_circuit(3)  # two cx gates
        folded, achieved = fold_two_qubit_gates(circuit, 2.0)
        assert achieved == pytest.approx(2.0)  # one of two gates folded once
        assert folded.num_two_qubit_gates() == 4


class TestExtrapolators:
    def test_linear_exact_on_a_line(self):
        scales = [1.0, 2.0, 3.0]
        values = [0.9 - 0.1 * s for s in scales]
        assert LinearExtrapolator().extrapolate(scales, values) == pytest.approx(0.9)

    def test_richardson_exact_on_a_polynomial(self):
        scales = [1.0, 2.0, 3.0]
        values = [1.0 - 0.2 * s + 0.05 * s**2 for s in scales]
        assert RichardsonExtrapolator().extrapolate(scales, values) == pytest.approx(1.0)

    def test_exponential_exact_on_a_decay(self):
        scales = [1.0, 2.0, 3.0, 4.0]
        values = [0.5 + 0.4 * np.exp(-0.7 * s) for s in scales]
        result = ExponentialExtrapolator().extrapolate(scales, values)
        assert result == pytest.approx(0.9, abs=1e-6)

    def test_exponential_falls_back_to_linear_with_two_points(self):
        scales = [1.0, 3.0]
        values = [0.8, 0.6]
        assert ExponentialExtrapolator().extrapolate(scales, values) == pytest.approx(0.9)

    def test_resolve(self):
        assert resolve_extrapolator(None).name == "linear"
        assert resolve_extrapolator("richardson").name == "richardson"
        assert resolve_extrapolator("exp").name == "exponential"
        with pytest.raises(MitigationError):
            resolve_extrapolator("quadratic-ish")


class TestZNEMitigator:
    def test_transform_emits_one_variant_per_scale(self):
        mitigator = ZNEMitigator(scale_factors=(1, 3, 5))
        variants = mitigator.transform(ghz_circuit(3))
        assert len(variants) == 3
        gate_counts = [v.num_gates(include_measurements=False) for v in variants]
        assert gate_counts == [3, 9, 15]

    def test_extrapolated_weights_sum_to_one(self):
        mitigator = ZNEMitigator(scale_factors=(1, 3))
        counts = [
            Counts({"00": 800, "11": 150, "01": 50}),
            Counts({"00": 600, "11": 250, "01": 150}),
        ]
        quasi = mitigator.mitigate(counts)
        assert sum(quasi.values()) == pytest.approx(1.0, abs=1e-9)
        # Linear extrapolation sharpens toward the dominant outcome.
        assert quasi["00"] > 0.8

    def test_achieved_scales_enter_the_fit(self):
        circuit = ghz_circuit(3)
        mitigator = ZNEMitigator(scale_factors=(1.0, 2.0))
        achieved = mitigator.achieved_scales(circuit)
        assert achieved[0] == pytest.approx(1.0)
        assert achieved[1] != pytest.approx(2.0)  # 3 gates cannot realise 2.0 exactly

    def test_zne_improves_ghz_under_depolarizing_noise(self):
        """The seeded noisy testbed: ZNE beats raw on Hellinger fidelity."""
        model = NoiseModel.uniform(4, error_1q=0.002, error_2q=0.02, readout_error=0.0)
        circuit = ghz_circuit(4)
        mitigator = ZNEMitigator(scale_factors=(1, 3, 5), extrapolator="linear")
        counts = [
            StatevectorSimulator(noise_model=model, seed=3, trajectories=1).run(v, shots=8000)
            for v in mitigator.transform(circuit)
        ]
        quasi = mitigator.mitigate(counts, circuit=circuit)
        ideal = {"0000": 0.5, "1111": 0.5}
        assert hellinger_fidelity(quasi, ideal) > hellinger_fidelity(counts[0], ideal)

    def test_counts_cardinality_checked(self):
        mitigator = ZNEMitigator(scale_factors=(1, 3))
        with pytest.raises(MitigationError):
            mitigator.mitigate([Counts({"0": 1})])

    def test_collapsed_achieved_scales_rejected(self):
        """A circuit with no foldable units cannot realise distinct noise levels."""
        circuit = Circuit(1).h(0).measure(0, 0)
        mitigator = ZNEMitigator(scale_factors=(1.0, 1.2, 1.4), folding="local")
        # transform() fails fast, before the engine executes any variant...
        with pytest.raises(MitigationError):
            mitigator.transform(circuit)
        # ...and mitigate() guards direct callers the same way.
        counts = [Counts({"0": 500, "1": 500}) for _ in range(3)]
        with pytest.raises(MitigationError):
            mitigator.mitigate(counts, circuit=circuit)

    def test_duplicate_achieved_scales_merged_for_richardson(self):
        """Coinciding achieved scales average instead of dividing by zero."""
        circuit = ghz_circuit(2)  # 2 body gates quantise the partial folds
        mitigator = ZNEMitigator(scale_factors=(1.0, 2.9, 3.0), extrapolator="richardson")
        achieved = mitigator.achieved_scales(circuit)
        assert achieved[1] == achieved[2]  # both land on 3.0
        counts = [
            Counts({"00": 800, "11": 200}),
            Counts({"00": 640, "11": 360}),
            Counts({"00": 660, "11": 340}),
        ]
        quasi = mitigator.mitigate(counts, circuit=circuit)
        assert np.isfinite(list(quasi.values())).all()
        assert sum(quasi.values()) == pytest.approx(1.0, abs=1e-9)

    def test_achieved_scales_match_fold_outputs(self):
        """The closed form agrees with what the folding transforms realise."""
        circuit = ghz_circuit(3)
        for folding, fold in (("global", fold_global), ("local", fold_two_qubit_gates)):
            mitigator = ZNEMitigator(scale_factors=(1.0, 2.0, 3.4), folding=folding)
            expected = [fold(circuit, s)[1] for s in mitigator.scale_factors]
            assert mitigator.achieved_scales(circuit) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(MitigationError):
            ZNEMitigator(scale_factors=(1,))
        with pytest.raises(MitigationError):
            ZNEMitigator(scale_factors=(0.5, 2))
        with pytest.raises(MitigationError):
            ZNEMitigator(folding="spiral")
