"""Readout-error mitigation: calibration estimation and counts correction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import hellinger_fidelity
from repro.circuits import Circuit
from repro.exceptions import MitigationError
from repro.mitigation import (
    ReadoutMitigator,
    confusion_matrices_from_counts,
    project_to_simplex,
    readout_calibration_circuits,
)
from repro.simulation import Counts, NoiseModel, QuasiDistribution, StatevectorSimulator

#: Readout-only noise: per-qubit flip probabilities, no gate noise.
PER_QUBIT_ERRORS = [0.03, 0.08, 0.05, 0.12]


def readout_only_model(errors):
    return NoiseModel(
        len(errors), t1=1e9, t2=1e9, readout_error=list(errors), idle_during_readout=False
    )


def ghz_circuit(n):
    circuit = Circuit(n, name=f"ghz_{n}")
    circuit.h(0)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    return circuit.measure_all()


def run_calibration(mitigator, model, num_qubits, shots=20000, seed=11):
    circuits = mitigator.calibration_circuits(num_qubits)
    counts = [
        StatevectorSimulator(noise_model=model, seed=seed + i, trajectories=1).run(c, shots=shots)
        for i, c in enumerate(circuits)
    ]
    return mitigator.calibration_from_counts(counts, num_qubits)


class TestCalibrationCircuits:
    def test_tensored_is_two_circuits(self):
        zeros, ones = readout_calibration_circuits(4, "tensored")
        assert zeros.count_ops() == {"measure": 4}
        assert ones.count_ops() == {"x": 4, "measure": 4}

    def test_full_enumerates_basis_states(self):
        circuits = readout_calibration_circuits(3, "full")
        assert len(circuits) == 8
        x_counts = sorted(c.count_ops().get("x", 0) for c in circuits)
        assert x_counts == [0, 1, 1, 1, 2, 2, 2, 3]

    def test_full_rejects_wide_registers(self):
        with pytest.raises(MitigationError):
            readout_calibration_circuits(11, "full")

    def test_unknown_method_rejected(self):
        with pytest.raises(MitigationError):
            readout_calibration_circuits(2, "magic")


class TestTensoredEstimation:
    def test_recovers_per_qubit_flip_probabilities(self):
        """Tensored calibration on a noisy simulator recovers the per-qubit
        readout_error sequence within statistical tolerance."""
        model = readout_only_model(PER_QUBIT_ERRORS)
        mitigator = ReadoutMitigator(method="tensored", calibration_shots=20000)
        calibration = run_calibration(mitigator, model, len(PER_QUBIT_ERRORS))
        rates = calibration.error_rates()
        assert rates.shape == (4, 2)
        # Binomial std at 20000 shots is < 0.003; allow 3 sigma plus margin.
        for qubit, expected in enumerate(PER_QUBIT_ERRORS):
            assert rates[qubit, 0] == pytest.approx(expected, abs=0.01)
            assert rates[qubit, 1] == pytest.approx(expected, abs=0.01)

    def test_exact_counts_give_exact_matrices(self):
        counts0 = Counts({"00": 90, "10": 10})  # qubit 0 flips 10% of the time
        counts1 = Counts({"11": 80, "01": 20})
        matrices = confusion_matrices_from_counts([counts0, counts1], 2, "tensored")
        assert matrices[0, 1, 0] == pytest.approx(0.1)
        assert matrices[0, 0, 1] == pytest.approx(0.2)
        assert matrices[1, 1, 0] == pytest.approx(0.0)
        assert matrices[1, 0, 1] == pytest.approx(0.0)
        # Columns are probability distributions.
        assert np.allclose(matrices.sum(axis=1), 1.0)

    def test_wrong_cardinality_rejected(self):
        with pytest.raises(MitigationError):
            confusion_matrices_from_counts([Counts({"0": 1})], 1, "tensored")


class TestCorrection:
    def test_exact_confusion_inverts_exactly(self):
        """With the true confusion matrix, correction undoes the noise map."""
        # True distribution: 50/50 over 00 and 11; one qubit with 10% error.
        mitigator = ReadoutMitigator(method="tensored", correction="inverse")
        matrices = np.array([[[0.9, 0.1], [0.1, 0.9]], [[1.0, 0.0], [0.0, 1.0]]])
        calibration = mitigator.calibration_from_counts(
            [Counts({"00": 9000, "10": 1000}), Counts({"11": 9000, "01": 1000})], 2
        )
        # Apply the same noise analytically to the GHZ distribution.
        noisy = Counts({"00": 4500, "10": 500, "11": 4500, "01": 500})
        quasi = mitigator.mitigate([noisy], calibration=calibration)
        assert quasi["00"] == pytest.approx(0.5, abs=1e-9)
        assert quasi["11"] == pytest.approx(0.5, abs=1e-9)
        assert sum(quasi.values()) == pytest.approx(1.0, abs=1e-9)

    def test_mitigated_ghz_beats_raw_on_hellinger(self):
        model = readout_only_model(PER_QUBIT_ERRORS)
        mitigator = ReadoutMitigator(method="tensored", calibration_shots=20000)
        calibration = run_calibration(mitigator, model, 4)
        circuit = ghz_circuit(4)
        raw = StatevectorSimulator(noise_model=model, seed=5, trajectories=1).run(
            circuit, shots=8000
        )
        quasi = mitigator.mitigate([raw], circuit=circuit, calibration=calibration)
        ideal = {"0000": 0.5, "1111": 0.5}
        assert hellinger_fidelity(quasi, ideal) > hellinger_fidelity(raw, ideal)
        assert hellinger_fidelity(quasi, ideal) > 0.95

    def test_full_method_mitigates(self):
        errors = [0.05, 0.1, 0.02]
        model = readout_only_model(errors)
        mitigator = ReadoutMitigator(method="full", calibration_shots=8000)
        calibration = run_calibration(mitigator, model, 3, shots=8000, seed=100)
        circuit = ghz_circuit(3)
        raw = StatevectorSimulator(noise_model=model, seed=42, trajectories=1).run(
            circuit, shots=8000
        )
        quasi = mitigator.mitigate([raw], circuit=circuit, calibration=calibration)
        ideal = {"000": 0.5, "111": 0.5}
        assert hellinger_fidelity(quasi, ideal) > hellinger_fidelity(raw, ideal)

    def test_inverse_correction_is_quasi(self):
        """Raw inversion preserves total weight exactly and may go negative."""
        mitigator = ReadoutMitigator(method="tensored", correction="inverse")
        calibration = mitigator.calibration_from_counts(
            [Counts({"00": 900, "10": 60, "01": 40}), Counts({"11": 880, "01": 70, "10": 50})], 2
        )
        raw = Counts({"00": 480, "11": 430, "01": 50, "10": 40})
        quasi = mitigator.mitigate([raw], calibration=calibration)
        assert isinstance(quasi, QuasiDistribution)
        assert sum(quasi.values()) == pytest.approx(1.0, abs=1e-9)

    def test_least_squares_correction_is_a_distribution(self):
        mitigator = ReadoutMitigator(method="tensored", correction="least_squares")
        calibration = mitigator.calibration_from_counts(
            [Counts({"00": 900, "10": 60, "01": 40}), Counts({"11": 880, "01": 70, "10": 50})], 2
        )
        raw = Counts({"00": 480, "11": 430, "01": 50, "10": 40})
        quasi = mitigator.mitigate([raw], calibration=calibration)
        assert all(value >= 0 for value in quasi.values())
        assert sum(quasi.values()) == pytest.approx(1.0, abs=1e-9)
        assert quasi.negativity() == 0.0

    def test_wide_register_subspace_path(self):
        """Registers beyond the dense cutoff are corrected on the observed support."""
        n = 14
        errors = [0.05] * n
        mitigator = ReadoutMitigator(method="tensored", correction="inverse")
        calibration = mitigator.calibration_from_counts(
            [
                Counts({"0" * n: 9500, "1" + "0" * (n - 1): 500}),
                Counts({"1" * n: 9500, "0" + "1" * (n - 1): 500}),
            ],
            n,
        )
        raw = Counts({"0" * n: 450, "1" * n: 470, "1" + "0" * (n - 1): 40, "0" + "1" * (n - 1): 40})
        quasi = mitigator.mitigate([raw], calibration=calibration)
        ideal = {"0" * n: 0.5, "1" * n: 0.5}
        assert hellinger_fidelity(quasi, ideal) > hellinger_fidelity(raw, ideal)

    def test_qubit_to_clbit_permutation_respected(self):
        """A circuit measuring qubit q into clbit != q uses qubit q's matrix."""
        # Qubit 0 is noisy, qubit 1 clean; the circuit crosses the mapping.
        mitigator = ReadoutMitigator(method="tensored", correction="inverse")
        calibration = mitigator.calibration_from_counts(
            [Counts({"00": 900, "10": 100}), Counts({"11": 900, "01": 100})], 2
        )
        circuit = Circuit(2).x(0).measure(0, 1).measure(1, 0)
        # Qubit 0 is |1>, reported in clbit 1; noise flips it 10% of the time.
        raw = Counts({"01": 900, "00": 100})
        quasi = mitigator.mitigate([raw], circuit=circuit, calibration=calibration)
        assert quasi.get("01", 0.0) == pytest.approx(1.0, abs=1e-9)


class TestSimplexProjection:
    def test_distribution_is_fixed_point(self):
        values = np.array([0.2, 0.3, 0.5])
        assert np.allclose(project_to_simplex(values), values)

    def test_negative_weight_removed(self):
        projected = project_to_simplex(np.array([1.04, -0.04]))
        assert projected[1] == 0.0
        assert projected.sum() == pytest.approx(1.0)
        assert (projected >= 0).all()

    def test_sums_to_one(self, rng):
        for _ in range(20):
            values = rng.normal(size=8)
            projected = project_to_simplex(values)
            assert projected.sum() == pytest.approx(1.0)
            assert (projected >= -1e-12).all()


class TestValidation:
    def test_unknown_options_rejected(self):
        with pytest.raises(MitigationError):
            ReadoutMitigator(method="partial")
        with pytest.raises(MitigationError):
            ReadoutMitigator(correction="bayesian")
        with pytest.raises(MitigationError):
            ReadoutMitigator(calibration_shots=0)

    def test_mitigate_requires_calibration(self):
        with pytest.raises(MitigationError):
            ReadoutMitigator().mitigate([Counts({"0": 1})], calibration=None)
