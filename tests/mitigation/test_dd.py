"""Dynamical decoupling: idle-window insertion and pipeline registration."""

from __future__ import annotations

import pytest

from repro.circuits import Circuit
from repro.exceptions import MitigationError
from repro.mitigation import DynamicalDecoupling, DynamicalDecouplingMitigator
from repro.simulation import Counts
from repro.transpiler import preset_pipeline
from repro.transpiler.passes import PropertySet


def idle_window_circuit():
    """Qubit 1 idles for 6 moments between its two operations."""
    circuit = Circuit(2)
    circuit.h(0).h(1)
    for _ in range(6):
        circuit.t(0)
    circuit.cx(0, 1)
    circuit.measure_all()
    return circuit


class TestDynamicalDecouplingPass:
    def test_inserts_sequence_into_idle_window(self):
        circuit = idle_window_circuit()
        properties = PropertySet()
        decoupled = DynamicalDecoupling("xy4").run(circuit, properties)
        ops = decoupled.count_ops()
        assert ops["x"] == 2 and ops["y"] == 2
        assert properties["metrics"]["dd_pulses"] == 4

    def test_xx_sequence(self):
        circuit = idle_window_circuit()
        decoupled = DynamicalDecoupling("xx").run(circuit, PropertySet())
        ops = decoupled.count_ops()
        assert ops["x"] == 2 and "y" not in ops

    def test_unitary_preserved_up_to_phase(self, unitary_equivalent):
        circuit = Circuit(2).h(0).h(1)
        for _ in range(6):
            circuit.t(0)
        circuit.cx(0, 1)
        decoupled = DynamicalDecoupling("xy4").run(circuit, PropertySet())
        unitary_equivalent(decoupled, circuit)
        decoupled_xx = DynamicalDecoupling("xx").run(circuit, PropertySet())
        unitary_equivalent(decoupled_xx, circuit)

    def test_no_insertion_without_idle_windows(self):
        circuit = Circuit(2).h(0).cx(0, 1).measure_all()
        decoupled = DynamicalDecoupling("xy4").run(circuit, PropertySet())
        assert decoupled is circuit  # untouched, barriers and all

    def test_leading_and_trailing_idle_skipped(self):
        # Qubit 1 only acts at the very end: its leading idle stays empty.
        circuit = Circuit(2)
        circuit.h(0)
        for _ in range(8):
            circuit.t(0)
        circuit.h(1)
        decoupled = DynamicalDecoupling("xy4").run(circuit, PropertySet())
        assert decoupled is circuit

    def test_depth_preserved(self):
        """Pulses fill existing idle moments; the schedule grows no deeper."""
        circuit = idle_window_circuit()
        decoupled = DynamicalDecoupling("xy4").run(circuit, PropertySet())
        assert decoupled.depth() == circuit.depth()

    def test_validation(self):
        with pytest.raises(MitigationError):
            DynamicalDecoupling("cpmg")
        with pytest.raises(MitigationError):
            DynamicalDecoupling("xy4", min_idle_moments=2)

    def test_signature_distinguishes_configurations(self):
        assert DynamicalDecoupling("xx").signature() != DynamicalDecoupling("xy4").signature()


class TestPresetRegistration:
    def test_preset_pipeline_appends_dd_pass(self, ibm_device):
        plain = preset_pipeline(ibm_device, optimization_level=1)
        with_dd = preset_pipeline(ibm_device, optimization_level=1, dd="xy4")
        assert len(with_dd) == len(plain) + 2
        names = [p.name for p in with_dd]
        # DD slots after the cleanup passes, then a re-translation keeps the
        # inserted pulses native, before the final DepthAnalysis.
        assert names[-3] == "dynamical_decoupling"
        assert names[-2] == "basis_translation"
        assert names[-1] == "depth_analysis"

    def test_dd_changes_the_pipeline_fingerprint(self, ibm_device):
        plain = preset_pipeline(ibm_device)
        xy4 = preset_pipeline(ibm_device, dd="xy4")
        xx = preset_pipeline(ibm_device, dd="xx")
        assert len({plain.fingerprint, xy4.fingerprint, xx.fingerprint}) == 3

    def test_dd_pipeline_compiles_with_pulses_surviving_cleanup(self, aqt_device):
        # Qubit 1 idles through a chain of alternating two-qubit gates that
        # no cleanup pass can collapse (single-qubit runs would be fused).
        circuit = Circuit(4)
        circuit.cx(0, 1)
        for _ in range(3):
            circuit.cx(0, 2)
            circuit.cx(2, 3)
        circuit.cx(0, 1)
        circuit.measure_all()
        pipeline = preset_pipeline(aqt_device, optimization_level=2, dd="xx")
        properties = PropertySet()
        compiled = pipeline.run(circuit, properties)
        # The inserted pulses survive (cancellation ran before insertion)
        # and the re-translation leaves the output in the native basis.
        assert properties["metrics"]["dd_pulses"] > 0
        native = set(aqt_device.basis_gates) | {"measure", "reset", "barrier"}
        assert set(compiled.count_ops()) <= native


class TestDDMitigator:
    def test_transform_applies_the_pass(self):
        mitigator = DynamicalDecouplingMitigator("xy4")
        variants = mitigator.transform(idle_window_circuit())
        assert len(variants) == 1
        assert variants[0].count_ops().get("y", 0) == 2

    def test_mitigate_is_passthrough(self):
        mitigator = DynamicalDecouplingMitigator()
        counts = Counts({"00": 750, "11": 250})
        quasi = mitigator.mitigate([counts])
        assert quasi["00"] == pytest.approx(0.75)
        assert quasi["11"] == pytest.approx(0.25)
