"""Tests for the feature-space coverage analysis (Table I)."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.coverage import (
    coverage_volume,
    coverage_volume_of_circuits,
    feature_matrix,
    ppl2020_suite_vectors,
    qasmbench_suite_vectors,
    supermarq_suite_vectors,
    synthetic_suite_vectors,
    triq_suite_vectors,
)
from repro.exceptions import AnalysisError


class TestCoverageVolume:
    def test_unit_simplex_volume(self):
        """Six unit vectors plus the origin span a simplex of volume 1/6!."""
        vectors = synthetic_suite_vectors()
        assert coverage_volume(vectors) == pytest.approx(1.0 / math.factorial(6), rel=1e-6)

    def test_too_few_points_give_zero(self):
        assert coverage_volume(np.eye(6)[:4]) == 0.0

    def test_degenerate_points_give_tiny_volume(self):
        # 10 copies of 2 distinct points: degenerate, volume ~ 0.
        points = np.vstack([np.zeros(6)] * 5 + [np.ones(6) * 0.5] * 5)
        assert coverage_volume(points) < 1e-6

    def test_unit_hypercube_corners(self):
        corners = np.array(
            [[float(b) for b in format(i, "06b")] for i in range(64)]
        )
        assert coverage_volume(corners) == pytest.approx(1.0, rel=1e-6)

    def test_invalid_shape_rejected(self):
        with pytest.raises(AnalysisError):
            coverage_volume(np.zeros(6))

    def test_feature_matrix_shape(self):
        circuits = [Circuit(2).h(0).cx(0, 1), Circuit(3).cx(0, 1).cx(1, 2)]
        matrix = feature_matrix(circuits)
        assert matrix.shape == (2, 6)

    def test_empty_circuit_list_rejected(self):
        with pytest.raises(AnalysisError):
            feature_matrix([])

    def test_volume_of_circuits_wrapper(self):
        circuits = [Circuit(2).h(0), Circuit(2).cx(0, 1)]
        assert coverage_volume_of_circuits(circuits) == 0.0


class TestSuiteComparison:
    def test_small_suites_have_tiny_volume(self):
        assert coverage_volume(triq_suite_vectors()) < 1e-3
        assert coverage_volume(ppl2020_suite_vectors()) < 1e-3

    def test_supermarq_beats_fixed_size_suites(self):
        """The realistic, scalable suite covers orders of magnitude more volume
        than the small fixed-size suites (Table I ordering, at reduced scale).

        Note: with the strict Eq. 6 definition of the Measurement feature
        (mid-circuit only), the proxy corpora for QASMBench/TriQ/PPL+2020 are
        nearly flat along that axis, so their volumes collapse; SupermarQ's
        error-correction benchmarks keep its hull six-dimensional.  The
        synthetic suite's idealised unit vectors are not reachable by real
        circuits, so unlike the paper it is not strictly dominated here —
        EXPERIMENTS.md discusses the discrepancy.
        """
        supermarq = coverage_volume(supermarq_suite_vectors(max_size=27))
        qasmbench = coverage_volume(qasmbench_suite_vectors(max_size=30))
        synthetic = coverage_volume(synthetic_suite_vectors())
        triq = coverage_volume(triq_suite_vectors())
        ppl = coverage_volume(ppl2020_suite_vectors())
        assert supermarq > 100 * qasmbench
        assert supermarq > 100 * triq
        assert supermarq > 100 * ppl
        assert synthetic > triq
        assert synthetic > ppl
        assert qasmbench > triq > ppl

    def test_qasmbench_proxy_beats_small_suites(self):
        qasmbench = coverage_volume(qasmbench_suite_vectors(max_size=30))
        assert qasmbench > coverage_volume(triq_suite_vectors())

    def test_feature_vectors_in_unit_hypercube(self):
        vectors = supermarq_suite_vectors(max_size=11)
        assert np.all(vectors >= 0.0)
        assert np.all(vectors <= 1.0)
